"""The analysis driver: file discovery, parsing, and rule application.

:class:`Analyzer` turns a list of paths (files or directories) into a
deterministic, sorted list of :class:`~repro.analysis.findings.Finding`.
Discovery order, finding order, and fingerprints are all stable across
processes — the linter holds itself to the same reproducibility bar it
enforces.

A run has two layers.  Per-module rules see one
:class:`~repro.analysis.rules.ModuleContext` at a time and their results
are cached on disk keyed by content hash (see
:mod:`repro.analysis.cache`).  Project rules
(:class:`~repro.analysis.rules.ProjectRule`) see the assembled
:class:`~repro.analysis.graph.ProjectGraph` and always run fresh —
their inputs are the cached per-module summaries, so a warm run still
performs zero re-parses.  Inline ``# repro: allow[...]`` suppressions
are applied last, after occurrence numbering, so suppressing a finding
never shifts another finding's fingerprint.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import AnalysisError
from .cache import LintCache, content_hash, ruleset_signature
from .findings import Finding
from .graph import ModuleSummary, ProjectGraph, module_name_for, summarize_module
from .rules import ModuleContext, ProjectRule, Rule, RuleRegistry, default_registry
from .suppressions import StaleSuppressionRule, Suppression

__all__ = ["Analyzer", "LintResult", "LintStats"]

_IDENTIFIER_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")

#: Directories next to the analysis root scanned for external symbol
#: references (REP043): a name used only by a test is still alive.
_REFERENCE_ROOT_NAMES = ("tests", "examples", "benchmarks")


@dataclass
class LintStats:
    """Counters describing how a run did its work."""

    files: int = 0
    parsed: int = 0
    cache_hits: int = 0
    cache_enabled: bool = False

    @property
    def cache_misses(self) -> int:
        return self.files - self.cache_hits

    def to_dict(self) -> Dict[str, Any]:
        return {
            "files": self.files,
            "parsed": self.parsed,
            "cache_enabled": self.cache_enabled,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }


@dataclass
class LintResult:
    """Everything one :meth:`Analyzer.analyze` run produced.

    ``findings`` are the live, occurrence-numbered findings (including
    any REP050 stale-suppression findings the engine emitted);
    ``inline_suppressed`` are findings silenced by in-source ``allow``
    comments.  The baseline is applied by the caller on ``findings`` —
    inline suppression happens first, baseline second.
    """

    findings: List[Finding] = field(default_factory=list)
    inline_suppressed: List[Finding] = field(default_factory=list)
    stats: LintStats = field(default_factory=LintStats)
    summaries: List[ModuleSummary] = field(default_factory=list)


class Analyzer:
    """Runs a rule pack over Python source trees.

    Parameters
    ----------
    rules:
        Explicit rule instances; defaults to the full registered pack.
    select / ignore:
        Rule-ID filters applied when ``rules`` is not given.
    root:
        Directory that finding paths are made relative to (defaults to
        the current working directory).  Using repo-relative paths keeps
        baseline fingerprints identical no matter where the tree is
        checked out.
    registry:
        Registry to draw rules from; defaults to the process-wide one.
    cache_path:
        Path for the on-disk incremental cache; ``None`` (the default)
        disables caching.
    reference_roots:
        Extra directories scanned (textually) for identifier uses that
        count as references for the dead-export rule.  Defaults to
        ``tests``/``examples``/``benchmarks`` under ``root`` when they
        exist.
    ignore_unused_suppressions:
        Do not report inline suppressions that matched nothing.
    """

    def __init__(
        self,
        rules: Optional[Sequence[Rule]] = None,
        select: Optional[Iterable[str]] = None,
        ignore: Optional[Iterable[str]] = None,
        root: Optional[str] = None,
        registry: Optional[RuleRegistry] = None,
        cache_path: Optional[str] = None,
        reference_roots: Optional[Sequence[str]] = None,
        ignore_unused_suppressions: bool = False,
    ) -> None:
        registry = registry or default_registry()
        if rules is None:
            rules = registry.instantiate(select=select, ignore=ignore)
        self.rules: List[Rule] = list(rules)
        self.module_rules: List[Rule] = [
            rule for rule in self.rules if not isinstance(rule, ProjectRule)
        ]
        self.project_rules: List[ProjectRule] = [
            rule for rule in self.rules if isinstance(rule, ProjectRule)
        ]
        self.root = os.path.abspath(root or os.getcwd())
        self.cache_path = cache_path
        self.reference_roots = (
            list(reference_roots) if reference_roots is not None else None
        )
        self.ignore_unused_suppressions = ignore_unused_suppressions

    # -- discovery ------------------------------------------------------

    def discover(self, paths: Iterable[str]) -> List[str]:
        """Expand files/directories into a sorted list of ``.py`` files."""
        files: List[str] = []
        for path in paths:
            if os.path.isdir(path):
                for dirpath, dirnames, filenames in os.walk(path):
                    dirnames.sort()
                    dirnames[:] = [
                        d for d in dirnames
                        if d != "__pycache__" and not d.startswith(".")
                    ]
                    for filename in sorted(filenames):
                        if filename.endswith(".py"):
                            files.append(os.path.join(dirpath, filename))
            elif os.path.isfile(path):
                files.append(path)
            else:
                raise AnalysisError(f"no such file or directory: {path}")
        # De-duplicate while keeping a deterministic order.
        unique: Dict[str, None] = {}
        for path in files:
            unique.setdefault(os.path.abspath(path), None)
        return sorted(unique)

    def _display_path(self, abspath: str) -> str:
        relative = os.path.relpath(abspath, self.root)
        if relative.startswith(".."):
            return abspath.replace(os.sep, "/")
        return relative.replace(os.sep, "/")

    # -- execution ------------------------------------------------------

    def parse(self, abspath: str) -> ModuleContext:
        """Read and parse one file into a :class:`ModuleContext`."""
        return self._parse_source(abspath, self._read(abspath))

    @staticmethod
    def _read(abspath: str) -> bytes:
        try:
            with open(abspath, "rb") as handle:
                return handle.read()
        except OSError as exc:
            raise AnalysisError(f"cannot read {abspath}: {exc}") from exc

    def _parse_source(self, abspath: str, data: bytes) -> ModuleContext:
        try:
            source = data.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise AnalysisError(f"cannot read {abspath}: {exc}") from exc
        try:
            tree = ast.parse(source, filename=abspath)
        except SyntaxError as exc:
            raise AnalysisError(
                f"cannot parse {abspath}: {exc.msg} (line {exc.lineno})"
            ) from exc
        return ModuleContext(
            path=self._display_path(abspath),
            basename=os.path.basename(abspath),
            tree=tree,
            lines=source.splitlines(),
        )

    def check_module(self, module: ModuleContext) -> List[Finding]:
        """Apply every per-module rule to one parsed module."""
        findings: List[Finding] = []
        for rule in self.module_rules:
            if rule.applies_to(module):
                findings.extend(rule.check(module))
        return findings

    # -- external references (REP043) -----------------------------------

    def _external_references(self) -> Set[str]:
        """Identifiers used in the reference roots (textual scan).

        A plain token scan, not a parse: reference roots are tests and
        scripts whose *mention* of a symbol is what keeps an export
        alive, and a regex over a few hundred KB costs nothing.
        """
        roots = self.reference_roots
        if roots is None:
            roots = [
                os.path.join(self.root, name)
                for name in _REFERENCE_ROOT_NAMES
                if os.path.isdir(os.path.join(self.root, name))
            ]
        references: Set[str] = set()
        for root in roots:
            if os.path.isfile(root):
                references.update(self._scan_identifiers(root))
                continue
            for dirpath, dirnames, filenames in os.walk(root):
                dirnames.sort()
                dirnames[:] = [
                    d for d in dirnames
                    if d != "__pycache__" and not d.startswith(".")
                ]
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        references.update(
                            self._scan_identifiers(
                                os.path.join(dirpath, filename)
                            )
                        )
        return references

    @staticmethod
    def _scan_identifiers(path: str) -> Set[str]:
        try:
            with open(path, "r", encoding="utf-8", errors="replace") as handle:
                text = handle.read()
        except OSError:
            return set()
        return set(_IDENTIFIER_RE.findall(text))

    # -- the run ---------------------------------------------------------

    def analyze(self, paths: Iterable[str]) -> LintResult:
        """Lint ``paths``: module rules (cached), project rules, inline
        suppressions — returning a :class:`LintResult`."""
        stats = LintStats(cache_enabled=self.cache_path is not None)
        cache: Optional[LintCache] = None
        if self.cache_path is not None:
            signature = ruleset_signature(
                [rule.rule_id for rule in self.module_rules]
            )
            cache = LintCache.load(self.cache_path, signature)

        raw_findings: List[Finding] = []
        summaries: List[ModuleSummary] = []
        display_paths: List[str] = []
        for abspath in self.discover(paths):
            display = self._display_path(abspath)
            display_paths.append(display)
            data = self._read(abspath)
            digest = content_hash(data)
            cached = cache.get(display, digest) if cache is not None else None
            if cached is not None:
                stats.cache_hits += 1
                module_findings, summary = cached
            else:
                stats.parsed += 1
                context = self._parse_source(abspath, data)
                module_findings = self.check_module(context)
                summary = summarize_module(context, module_name_for(display))
                if cache is not None:
                    cache.put(display, digest, module_findings, summary)
            stats.files += 1
            raw_findings.extend(module_findings)
            summaries.append(summary)
        if cache is not None:
            cache.prune(display_paths)
            cache.save()

        if self.project_rules:
            graph = ProjectGraph(
                summaries, external_references=self._external_references()
            )
            for rule in self.project_rules:
                raw_findings.extend(rule.check_project(graph))

        return self._apply_suppressions(raw_findings, summaries, stats)

    def run(self, paths: Iterable[str]) -> List[Finding]:
        """Lint ``paths`` and return the live findings, sorted.

        The historical entry point: equivalent to
        ``analyze(paths).findings`` (inline-suppressed findings are
        dropped; stale-suppression findings are included).
        """
        return self.analyze(paths).findings

    # -- suppressions & numbering ----------------------------------------

    def _apply_suppressions(
        self,
        raw_findings: List[Finding],
        summaries: List[ModuleSummary],
        stats: LintStats,
    ) -> LintResult:
        suppressions: Dict[str, List[Suppression]] = {
            summary.path: summary.suppressions
            for summary in summaries
            if summary.suppressions
        }
        rep050_active = any(
            rule.rule_id == StaleSuppressionRule.rule_id for rule in self.rules
        )

        used: Set[Tuple[str, int]] = set()
        flagged: List[Tuple[Finding, bool]] = []
        for finding in raw_findings:
            matched = False
            for suppression in suppressions.get(finding.path, ()):
                if (
                    suppression.line == finding.line
                    and finding.rule_id in suppression.rule_ids
                ):
                    matched = True
                    used.add((finding.path, suppression.line))
            flagged.append((finding, matched))

        if rep050_active:
            for summary in summaries:
                for suppression in summary.suppressions:
                    key = (summary.path, suppression.line)
                    if key not in used:
                        if self.ignore_unused_suppressions:
                            continue
                        ids = ",".join(suppression.rule_ids)
                        flagged.append((
                            StaleSuppressionRule.stale_finding(
                                summary.path, suppression,
                                f"suppression allow[{ids}] matches no"
                                " finding on this line; remove it",
                            ),
                            False,
                        ))
                    elif not suppression.reason:
                        flagged.append((
                            StaleSuppressionRule.stale_finding(
                                summary.path, suppression,
                                "suppression has no '-- reason'; every"
                                " exception carries its justification",
                            ),
                            False,
                        ))

        # Occurrence-number the *union* before partitioning: adding or
        # removing a suppression must never shift another finding's
        # fingerprint.
        flagged.sort(key=lambda pair: pair[0].sort_key)
        counts: Dict[Tuple[str, str, str], int] = {}
        findings: List[Finding] = []
        inline_suppressed: List[Finding] = []
        for finding, matched in flagged:
            key = (finding.rule_id, finding.path, finding.source.strip())
            occurrence = counts.get(key, 0)
            counts[key] = occurrence + 1
            if occurrence:
                finding = replace(finding, occurrence=occurrence)
            (inline_suppressed if matched else findings).append(finding)
        return LintResult(
            findings=findings,
            inline_suppressed=inline_suppressed,
            stats=stats,
            summaries=summaries,
        )
