"""Reporters: render findings for humans (text) and CI (JSON).

The SARIF reporter lives in :mod:`repro.analysis.sarif`; all three share
the same call shape (findings, baseline-suppressed, baseline, plus the
optional inline-suppressed list and run stats), so the CLI can dispatch
on ``--format`` alone.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from .baseline import Baseline
from .findings import Finding, Severity

__all__ = ["render_json", "render_text"]


def render_text(
    findings: Sequence[Finding],
    suppressed: Sequence[Finding] = (),
    baseline: Optional[Baseline] = None,
    inline_suppressed: Sequence[Finding] = (),
    stats: Optional[Dict[str, Any]] = None,
) -> str:
    """Human-readable report: one line per finding plus a summary.

    ``suppressed`` findings (matched by the baseline) and
    ``inline_suppressed`` findings (matched by ``# repro: allow``
    comments) are counted but not listed; stale baseline entries are
    listed so the allowlist cannot silently rot.
    """
    lines: List[str] = [finding.render() for finding in findings]
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    warnings = len(findings) - errors
    summary = (
        f"{len(findings)} finding(s): {errors} error(s), "
        f"{warnings} warning(s)"
    )
    if suppressed:
        summary += f"; {len(suppressed)} baselined"
    if inline_suppressed:
        summary += f"; {len(inline_suppressed)} inline-suppressed"
    lines.append(summary)
    if stats is not None and stats.get("cache_enabled"):
        lines.append(
            f"cache: {stats.get('cache_hits', 0)} hit(s), "
            f"{stats.get('parsed', 0)} parse(s) over "
            f"{stats.get('files', 0)} file(s)"
        )
    if baseline is not None:
        live = list(findings) + list(suppressed)
        for entry, reason in baseline.stale_reasons(live, inline_suppressed):
            why = (
                "covered by an inline suppression — remove the redundant"
                " baseline entry"
                if reason == "inline"
                else "violation no longer exists"
            )
            lines.append(f"stale baseline entry ({why}): {entry.render()}")
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding],
    suppressed: Sequence[Finding] = (),
    baseline: Optional[Baseline] = None,
    inline_suppressed: Sequence[Finding] = (),
    stats: Optional[Dict[str, Any]] = None,
) -> str:
    """Machine-readable report for CI gating."""
    live = list(findings) + list(suppressed)
    stale = (
        baseline.stale_reasons(live, inline_suppressed)
        if baseline is not None
        else []
    )
    payload = {
        "version": 1,
        "count": len(findings),
        "errors": sum(
            1 for f in findings if f.severity is Severity.ERROR
        ),
        "warnings": sum(
            1 for f in findings if f.severity is Severity.WARNING
        ),
        "baselined": len(suppressed),
        "inline_suppressed": len(inline_suppressed),
        "findings": [finding.to_dict() for finding in findings],
        "stale_baseline_entries": [
            {
                "rule": entry.rule_id,
                "path": entry.path,
                "fingerprint": entry.fingerprint,
                "comment": entry.comment,
                "reason": reason,
            }
            for entry, reason in stale
        ],
    }
    if stats is not None:
        payload["stats"] = dict(stats)
    return json.dumps(payload, indent=2, sort_keys=True)
