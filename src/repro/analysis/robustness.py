"""Robustness rules (REP03x).

.. note:: The rule packs are numbered by decade (determinism REP00x,
   clock REP01x, hygiene REP02x); REP011 is already taken by
   :class:`~repro.analysis.clockrules.RawTimestampParameterRule`, so
   the robustness pack opens the REP03x decade.

The fault-injection plane (:mod:`repro.faults`) makes every network
call in the library able to fail; this rule pack polices the two ways
retry code quietly goes wrong:

* an *unbounded* retry loop — ``while True:`` wrapping a network call
  with no visible attempt bound — which under a scheduled outage spins
  forever instead of giving up and degrading to UNMEASURED;
* a broad ``except`` that silently swallows the failure (``pass`` /
  ``continue`` body), which turns an exhausted retry budget into a
  fabricated negative observation.

REP031 guards the persistence layer: any state the library writes to
disk must go through :mod:`repro.io`'s atomic helpers (tmp + fsync +
rename) or the durable journal append — a direct ``open(..., "w")`` or
``Path.write_text`` can be torn by a crash mid-write, which is exactly
the failure mode the checkpoint plane exists to survive.

All are checked on ``src/repro`` itself by the self-hosting lint gate.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from .findings import Severity
from .rules import ModuleContext, Rule, register

__all__ = ["UnboundedRetryRule", "DirectStateWriteRule"]

#: Call names that reach the network fabric (directly or via a client).
#: ``get`` is deliberately absent — ``dict.get`` would swamp the rule
#: with false positives; HTTP fetch loops are caught via ``deliver_http``
#: and ``handle_request`` instead.
_NETWORK_CALLS = frozenset({
    "query",
    "resolve",
    "resolve_many",
    "handle_query",
    "handle_request",
    "deliver_dns",
    "deliver_http",
    "fetch",
    "request",
    "send",
})

#: Identifier fragments that signal the loop is bounded (an attempt
#: counter, a budget, a deadline) even though the ``while`` test is a
#: bare ``True``.
_BOUND_HINTS = ("attempt", "retr", "budget", "deadline", "timeout", "max", "tries")

_BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})


def _is_while_true(node: ast.While) -> bool:
    test = node.test
    return isinstance(test, ast.Constant) and bool(test.value) is True


def _called_names(nodes) -> Set[str]:
    names: Set[str] = set()
    for node in nodes:
        for child in ast.walk(node):
            if not isinstance(child, ast.Call):
                continue
            func = child.func
            if isinstance(func, ast.Attribute):
                names.add(func.attr)
            elif isinstance(func, ast.Name):
                names.add(func.id)
    return names


def _identifiers(nodes) -> Set[str]:
    found: Set[str] = set()
    for node in nodes:
        for child in ast.walk(node):
            if isinstance(child, ast.Name):
                found.add(child.id)
            elif isinstance(child, ast.Attribute):
                found.add(child.attr)
    return found


def _swallows_silently(handler: ast.ExceptHandler) -> bool:
    """True when the handler body does nothing but pass/continue."""
    return all(
        isinstance(statement, (ast.Pass, ast.Continue))
        for statement in handler.body
    )


def _broad_exception_names(node: ast.AST):
    if isinstance(node, ast.Name):
        if node.id in _BROAD_EXCEPTIONS:
            yield node.id
    elif isinstance(node, ast.Tuple):
        for element in node.elts:
            if isinstance(element, ast.Name) and element.id in _BROAD_EXCEPTIONS:
                yield element.id


@register
class UnboundedRetryRule(Rule):
    """REP030: unbounded retry loop or silently swallowed failure.

    A ``while True:`` whose body makes a network call must show a bound
    — an attempt counter, a retry budget, a deadline — somewhere in the
    loop; otherwise a scheduled outage turns it into a spin.  And a
    broad ``except`` whose body is only ``pass``/``continue`` converts
    any failure (including an exhausted retry budget) into silence —
    the measurement layer must degrade *explicitly* instead.
    """

    rule_id = "REP030"
    title = "unbounded retry / swallowed failure"
    severity = Severity.ERROR

    def check(self, module: ModuleContext) -> Iterator:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.While):
                yield from self._check_loop(module, node)
            elif isinstance(node, ast.ExceptHandler):
                yield from self._check_handler(module, node)

    def _check_loop(self, module: ModuleContext, node: ast.While) -> Iterator:
        if not _is_while_true(node):
            return
        network = _called_names(node.body) & _NETWORK_CALLS
        if not network:
            return
        mentioned = _identifiers(node.body) | _identifiers([node.test])
        bounded = any(
            hint in name.lower() for name in mentioned for hint in _BOUND_HINTS
        )
        if not bounded:
            yield self.finding(
                module,
                node,
                f"'while True' wraps network call(s) "
                f"{', '.join(sorted(network))} with no visible attempt "
                "bound; use a RetryPolicy (bounded attempts + budget)",
            )

    def _check_handler(
        self, module: ModuleContext, node: ast.ExceptHandler
    ) -> Iterator:
        if not _swallows_silently(node):
            return
        if node.type is None:
            yield self.finding(
                module,
                node,
                "bare 'except:' with a pass-only body swallows every "
                "failure silently; record the failure or re-raise",
            )
            return
        for name in _broad_exception_names(node.type):
            yield self.finding(
                module,
                node,
                f"'except {name}' with a pass-only body swallows "
                "failures silently; degrade explicitly (UNMEASURED, "
                "metrics) or catch the narrowest class",
            )


#: ``open`` modes that mutate the target file.
_MUTATING_MODE_CHARS = ("w", "a", "x", "+")


def _literal_open_mode(call: ast.Call) -> "str | None":
    """The call's literal mode string, if statically visible."""
    if len(call.args) >= 2:
        mode = call.args[1]
        if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
            return mode.value
    for keyword in call.keywords:
        if keyword.arg == "mode":
            value = keyword.value
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                return value.value
    return None


@register
class DirectStateWriteRule(Rule):
    """REP031: file writes bypassing the atomic-write helpers.

    A crash between a direct ``open(..., "w")``'s truncate and its
    final flush leaves a torn file — neither the old state nor the new.
    Every persistence path must use
    :func:`repro.io.atomic_write_text`/:func:`~repro.io.atomic_write_json`
    (tmp + fsync + rename) or, for journals,
    :func:`repro.io.append_durable_line`.  ``Path.write_text`` /
    ``write_bytes`` are flagged for the same reason; read-mode opens
    are untouched.
    """

    rule_id = "REP031"
    title = "direct file write bypasses atomic-write helpers"
    severity = Severity.ERROR

    def check(self, module: ModuleContext) -> Iterator:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "open":
                mode = _literal_open_mode(node)
                if mode is not None and any(
                    char in mode for char in _MUTATING_MODE_CHARS
                ):
                    yield self.finding(
                        module,
                        node,
                        f"open(..., {mode!r}) writes directly and can tear "
                        "the file on a crash; use repro.io.atomic_write_text"
                        "/atomic_write_json (or append_durable_line for "
                        "journal appends)",
                    )
            elif isinstance(func, ast.Attribute) and func.attr in (
                "write_text",
                "write_bytes",
            ):
                yield self.finding(
                    module,
                    node,
                    f".{func.attr}(...) writes directly and can tear the "
                    "file on a crash; use repro.io.atomic_write_text/"
                    "atomic_write_json",
                )
