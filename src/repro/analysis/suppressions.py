"""Inline suppressions: ``# repro: allow[REP0xx] -- reason``.

A suppression comment on a violating line silences matching findings on
that exact line — the lightweight alternative to a baseline entry when
the exception is local and self-explanatory::

    started = time.perf_counter()  # repro: allow[REP002] -- reporting only

Suppressions mirror the baseline's discipline: one that matches no
finding is itself reported (a *stale suppression*, REP050), so dead
``allow`` comments cannot accrete, and one without a ``-- reason`` is
reported too — every exception carries its justification in-line.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Sequence, Tuple

from .findings import Finding, Severity
from .rules import ModuleContext, Rule, register

__all__ = ["Suppression", "StaleSuppressionRule", "scan_suppressions"]

#: An ``allow`` comment: the directive must *start* the comment, so a
#: comment or docstring that merely quotes the syntax does not count.
_SUPPRESSION_RE = re.compile(
    r"^#\s*repro:\s*allow\[(?P<ids>[^\]]*)\]\s*(?:--\s*(?P<reason>.*\S))?"
)


@dataclass(frozen=True)
class Suppression:
    """One inline ``allow`` comment."""

    line: int
    rule_ids: Tuple[str, ...]
    reason: str
    source: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "line": self.line,
            "rule_ids": list(self.rule_ids),
            "reason": self.reason,
            "source": self.source,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Suppression":
        return cls(
            line=data["line"],
            rule_ids=tuple(data["rule_ids"]),
            reason=data["reason"],
            source=data["source"],
        )


def _comment_tokens(lines: Sequence[str]) -> List[Tuple[int, str]]:
    """Real ``#`` comment tokens as (line, text); docstrings excluded.

    Tokenizing (rather than regex-scanning raw lines) is what keeps a
    string literal that *quotes* the suppression syntax from acting as
    one.  Unparseable tail ends (the tokenizer can trip on trailing
    edits) degrade to whatever comments were seen before the error.
    """
    comments: List[Tuple[int, str]] = []
    reader = io.StringIO("\n".join(lines) + "\n").readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return comments


def scan_suppressions(lines: Sequence[str]) -> List[Suppression]:
    """Find every suppression comment in a module's source lines."""
    found: List[Suppression] = []
    for lineno, comment in _comment_tokens(lines):
        match = _SUPPRESSION_RE.match(comment)
        if match is None:
            continue
        ids = tuple(
            part.strip()
            for part in match.group("ids").split(",")
            if part.strip()
        )
        found.append(
            Suppression(
                line=lineno,
                rule_ids=ids,
                reason=(match.group("reason") or "").strip(),
                source=lines[lineno - 1] if lineno <= len(lines) else comment,
            )
        )
    return found


@register
class StaleSuppressionRule(Rule):
    """REP050: inline suppression that suppresses nothing.

    The rule itself is a placeholder: matching suppressions against
    findings needs the whole run's findings, so the *engine* emits
    REP050 findings after applying suppressions.  Registering the ID
    keeps ``--select`` / ``--ignore`` validation and the rule listing
    coherent, and ``--ignore-unused-suppressions`` is sugar for
    ignoring this rule.
    """

    rule_id = "REP050"
    title = "stale inline suppression"
    severity = Severity.WARNING

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        return iter(())

    @staticmethod
    def stale_finding(path: str, suppression: Suppression, reason: str) -> Finding:
        """Build the engine-emitted finding for one stale suppression."""
        return Finding(
            rule_id=StaleSuppressionRule.rule_id,
            path=path,
            line=suppression.line,
            column=0,
            message=reason,
            severity=StaleSuppressionRule.severity,
            source=suppression.source,
        )
