"""Rule base class, module context, and the rule registry.

A rule is a small class with a ``rule_id`` (``REPnnn``), a severity, and a
``check`` method that walks one module's AST and yields findings.  Rules
register themselves with the default :class:`RuleRegistry` via the
:func:`register` decorator at import time; the engine instantiates the
registry's rules once per run and applies ``--select`` / ``--ignore``
filtering by rule ID.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import ClassVar, Dict, Iterable, Iterator, List, Optional, Type

from ..errors import AnalysisError
from .findings import Finding, Severity

__all__ = [
    "ModuleContext",
    "ProjectRule",
    "Rule",
    "RuleRegistry",
    "default_registry",
    "register",
]


@dataclass
class ModuleContext:
    """One parsed module, as seen by every rule.

    ``path`` is the posix-style path recorded in findings (relative to the
    analysis root when possible), ``basename`` the file name, ``tree`` the
    parsed AST, and ``lines`` the raw source split into lines (1-indexed
    through :meth:`source_line`).
    """

    path: str
    basename: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)

    def source_line(self, lineno: int) -> str:
        """The raw text of a 1-indexed source line ("" out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


class Rule:
    """Base class for all lint rules.

    Subclasses set the class attributes and implement :meth:`check`.
    The :meth:`finding` helper builds a :class:`Finding` anchored to an
    AST node, pulling the source line text for fingerprinting.
    """

    rule_id: ClassVar[str] = ""
    title: ClassVar[str] = ""
    severity: ClassVar[Severity] = Severity.ERROR
    #: Module basenames this rule never applies to (e.g. the clock rules
    #: do not police ``clock.py`` itself).
    exempt_basenames: ClassVar[frozenset] = frozenset()

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Yield findings for one module.  Subclasses must override."""
        raise NotImplementedError

    def applies_to(self, module: ModuleContext) -> bool:
        """Whether this rule runs on the given module at all."""
        return module.basename not in self.exempt_basenames

    def finding(
        self, module: ModuleContext, node: ast.AST, message: str
    ) -> Finding:
        """Build a finding anchored at ``node``."""
        line = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0)
        return Finding(
            rule_id=self.rule_id,
            path=module.path,
            line=line,
            column=column,
            message=message,
            severity=self.severity,
            source=module.source_line(line),
        )


class ProjectRule(Rule):
    """A rule that sees the whole project graph, not one module.

    Per-module :meth:`check` is a no-op; the engine calls
    :meth:`check_project` once per run with the assembled
    :class:`~repro.analysis.graph.ProjectGraph`.  Project rules register
    in the same registry as per-module rules, so ``--select`` /
    ``--ignore``, baselines, and suppressions treat them uniformly.
    """

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, graph) -> Iterator[Finding]:
        """Yield findings for the whole project.  Subclasses override."""
        raise NotImplementedError

    def applies_to_summary(self, summary) -> bool:
        """Per-module exemption hook mirroring :meth:`Rule.applies_to`."""
        return summary.basename not in self.exempt_basenames


class RuleRegistry:
    """An ordered collection of rule classes keyed by rule ID."""

    def __init__(self) -> None:
        self._rules: Dict[str, Type[Rule]] = {}

    def add(self, rule_cls: Type[Rule]) -> Type[Rule]:
        """Register a rule class; duplicate IDs are a programming error."""
        rule_id = rule_cls.rule_id
        if not rule_id:
            raise AnalysisError(f"rule {rule_cls.__name__} has no rule_id")
        if rule_id in self._rules and self._rules[rule_id] is not rule_cls:
            raise AnalysisError(f"duplicate rule id: {rule_id}")
        self._rules[rule_id] = rule_cls
        return rule_cls

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._rules

    def __len__(self) -> int:
        return len(self._rules)

    def ids(self) -> List[str]:
        """All registered rule IDs, sorted."""
        return sorted(self._rules)

    def get(self, rule_id: str) -> Type[Rule]:
        """Look up one rule class by ID."""
        try:
            return self._rules[rule_id]
        except KeyError:
            raise AnalysisError(f"unknown rule id: {rule_id}") from None

    def instantiate(
        self,
        select: Optional[Iterable[str]] = None,
        ignore: Optional[Iterable[str]] = None,
    ) -> List[Rule]:
        """Build rule instances, honouring select/ignore ID filters.

        Unknown IDs in either filter raise :class:`AnalysisError` so typos
        fail loudly instead of silently disabling nothing.
        """
        selected = self._validate(select)
        ignored = self._validate(ignore)
        rules: List[Rule] = []
        for rule_id in self.ids():
            if selected is not None and rule_id not in selected:
                continue
            if ignored is not None and rule_id in ignored:
                continue
            rules.append(self._rules[rule_id]())
        return rules

    def _validate(self, ids: Optional[Iterable[str]]) -> Optional[frozenset]:
        if ids is None:
            return None
        wanted = frozenset(ids)
        for rule_id in sorted(wanted):
            if rule_id not in self._rules:
                raise AnalysisError(f"unknown rule id: {rule_id}")
        return wanted


_DEFAULT = RuleRegistry()


def default_registry() -> RuleRegistry:
    """The process-wide registry that built-in rules register into."""
    return _DEFAULT


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a rule to the default registry."""
    return _DEFAULT.add(rule_cls)
