"""The project graph: per-module summaries and a conservative call graph.

The per-file REP0xx rules cannot see across module boundaries: a
function that never touches ``random`` itself can still corrupt a run by
calling one that does.  This module builds the whole-program layer the
REP04x rules need:

* :func:`summarize_module` distils one parsed module into a
  :class:`ModuleSummary` — import bindings, symbol table, per-function
  call sites, direct-nondeterminism evidence, fork labels, ``__all__``
  exports, and inline suppressions.  Summaries are plain-data and
  JSON-round-trippable, which is what makes the on-disk incremental
  cache possible: a warm ``repro lint`` run rebuilds the project graph
  from cached summaries without re-parsing a single file.
* :class:`ProjectGraph` stitches summaries into a module/import graph,
  a project-wide symbol table, and a conservative intra-project call
  graph (direct calls, imported symbols, ``self`` dispatch through base
  classes, annotated-parameter dispatch, locally-constructed receivers,
  and a unique-method-name fallback).

Call edges *through an injected* :class:`~repro.rng.SeededRng` or
:class:`~repro.clock.SimulationClock` parameter are marked sanitized —
randomness and time obtained through injection are reproducible by
construction, so taint must not flow through them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from .rules import ModuleContext
from .suppressions import Suppression, scan_suppressions

__all__ = [
    "CallRef",
    "ClassSummary",
    "EffectSite",
    "ExportInfo",
    "ForkLabel",
    "FunctionSummary",
    "MergeHazard",
    "ModuleSummary",
    "ParamInfo",
    "ProjectGraph",
    "ShadowSite",
    "StateSite",
    "TaintReason",
    "module_name_for",
    "summarize_module",
]

#: Injected dependency types that sanitize a call edge.
SANITIZER_TYPES = frozenset({"SeededRng", "SimulationClock"})
#: Parameter names treated as injected streams even without annotations.
_RNG_PARAM_NAMES = frozenset({"rng"})
_CLOCK_PARAM_NAMES = frozenset({"clock"})
#: Modules that *define* the sanctioned wrappers; taint neither seeds
#: from nor propagates out of them (mirrors the per-file rules'
#: ``exempt_basenames`` for ``clock.py``).
SANCTIONED_BASENAMES = frozenset({"rng.py", "clock.py"})

#: Ubiquitous builtin/stdlib method names excluded from the
#: unique-method-name fallback — ``payload.items()`` must never resolve
#: to a project method that happens to be called ``items``.
_FALLBACK_DENYLIST = frozenset({
    "add", "append", "clear", "close", "copy", "count", "decode",
    "encode", "endswith", "extend", "format", "get", "index", "insert",
    "items", "join", "keys", "lower", "open", "partition", "pop",
    "read", "remove", "replace", "setdefault", "sort", "split",
    "startswith", "strip", "update", "upper", "values", "write",
})

#: ``time`` attributes that read the host clock (kept in sync with the
#: REP002 rule by the determinism tests).
_WALL_TIME_ATTRS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "localtime", "gmtime",
})
_WALL_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})
_OS_ENTROPY_ATTRS = frozenset({"urandom", "getrandom"})
_UUID_ENTROPY_ATTRS = frozenset({"uuid1", "uuid4"})

#: Constructors whose result is a shared-mutable container (REP06x).
_MUTABLE_CONSTRUCTORS = frozenset({
    "list", "dict", "set", "bytearray", "defaultdict", "deque",
    "Counter", "OrderedDict",
})
#: Mutating accumulator methods that make a fold arrival-order
#: sensitive when the folded iterable is unordered (REP061).
_FOLD_METHODS = frozenset({"append", "extend", "add", "update"})
#: Callables whose result iterates in a content-determined order, so a
#: fold over them is shard-order safe.
_ORDERED_ITER_CALLS = frozenset({"sorted", "range"})
#: Iteration wrappers that preserve their (first) argument's order.
_ORDER_PRESERVING_CALLS = frozenset({
    "enumerate", "reversed", "list", "tuple", "zip",
})

#: Container methods that mutate their receiver in place (REP07x
#: effect evidence; overlaps `_FOLD_METHODS` deliberately).
_MUTATING_METHODS = frozenset({
    "add", "append", "appendleft", "clear", "discard", "extend",
    "insert", "pop", "popitem", "popleft", "remove", "reverse",
    "setdefault", "sort", "update", "write", "writelines",
})
#: Builtin callables that perform I/O when called by name.
_IO_NAME_CALLS = frozenset({"input", "open", "print"})
#: ``os.*`` attributes that touch the filesystem or spawn processes.
_OS_IO_ATTRS = frozenset({
    "chmod", "chown", "makedirs", "mkdir", "popen", "remove",
    "removedirs", "rename", "replace", "rmdir", "system", "unlink",
})
#: Method names that are file I/O on any receiver (pathlib idiom).
_IO_ATTR_CALLS = frozenset({
    "read_bytes", "read_text", "write_bytes", "write_text",
})
#: Attribute roots whose calls are I/O outright.
_IO_ROOTS = frozenset({"shutil", "subprocess"})


def module_name_for(display_path: str) -> str:
    """Dotted module name for a repo-relative posix path.

    ``src/repro/obs/bench.py`` → ``repro.obs.bench``; a package
    ``__init__.py`` maps to the package itself.  A leading ``src``
    segment is dropped (the src-layout convention); paths outside the
    analysis root keep whatever segments they have.
    """
    parts = [part for part in display_path.split("/") if part not in ("", ".")]
    if parts and parts[0] == "src":
        parts = parts[1:]
    if not parts:
        return ""
    stem = parts[-1]
    if stem.endswith(".py"):
        stem = stem[: -len(".py")]
    parts[-1] = stem
    if stem == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


# ---------------------------------------------------------------------------
# Summary data model (JSON-round-trippable for the incremental cache)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ParamInfo:
    """One parameter: its name and the identifiers in its annotation."""

    name: str
    annotation_names: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "annotation_names": list(self.annotation_names)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ParamInfo":
        return cls(data["name"], tuple(data["annotation_names"]))

    @property
    def is_rng(self) -> bool:
        return "SeededRng" in self.annotation_names or self.name in _RNG_PARAM_NAMES

    @property
    def is_clock(self) -> bool:
        return (
            "SimulationClock" in self.annotation_names
            or self.name in _CLOCK_PARAM_NAMES
        )

    @property
    def is_injected(self) -> bool:
        return self.is_rng or self.is_clock


@dataclass(frozen=True)
class CallRef:
    """One call site, classified by how its receiver can be resolved.

    ``kind`` is one of ``name`` (plain ``f()``), ``self`` (``self.m()``),
    ``param`` (``p.m()`` on a parameter), ``typed`` (``v.m()`` on a local
    constructed as ``v = Cls(...)``), ``obj`` (``q.m()`` on another
    name — import alias or class), ``selfattr`` (``self.x.m()``),
    ``other`` (deeper chains, unique-method fallback only), and
    ``contained`` (implicit edge to a nested ``def``).
    """

    kind: str
    name: str
    qualifier: str = ""
    line: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "name": self.name,
            "qualifier": self.qualifier,
            "line": self.line,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CallRef":
        return cls(data["kind"], data["name"], data["qualifier"], data["line"])


@dataclass(frozen=True)
class TaintReason:
    """Direct nondeterminism evidence inside one function body."""

    kind: str  # "ambient-random" | "wall-clock" | "os-entropy" | "marker"
    detail: str
    line: int

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "detail": self.detail, "line": self.line}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TaintReason":
        return cls(data["kind"], data["detail"], data["line"])


@dataclass(frozen=True)
class ForkLabel:
    """One ``<rng>.fork("label")`` call with a constant label."""

    label: str
    line: int
    column: int
    source: str
    qualname: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "line": self.line,
            "column": self.column,
            "source": self.source,
            "qualname": self.qualname,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ForkLabel":
        return cls(
            data["label"], data["line"], data["column"],
            data["source"], data["qualname"],
        )


@dataclass(frozen=True)
class ShadowSite:
    """An injected rng/clock parameter substituted by a local fallback."""

    param: str
    line: int
    column: int
    source: str
    qualname: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "param": self.param,
            "line": self.line,
            "column": self.column,
            "source": self.source,
            "qualname": self.qualname,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ShadowSite":
        return cls(
            data["param"], data["line"], data["column"],
            data["source"], data["qualname"],
        )


@dataclass(frozen=True)
class ExportInfo:
    """One name exported through ``__all__``."""

    name: str
    line: int
    column: int
    source: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "line": self.line,
            "column": self.column,
            "source": self.source,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExportInfo":
        return cls(data["name"], data["line"], data["column"], data["source"])


@dataclass(frozen=True)
class StateSite:
    """One mutable-state definition site (REP060/REP063 evidence).

    Used for module-level globals, class-level attributes, and mutable
    default arguments alike; ``kind`` names the container constructor
    (``list``/``dict``/``set``/...).
    """

    name: str
    line: int
    column: int
    source: str
    kind: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "line": self.line,
            "column": self.column,
            "source": self.source,
            "kind": self.kind,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "StateSite":
        return cls(
            data["name"], data["line"], data["column"],
            data["source"], data["kind"],
        )


@dataclass(frozen=True)
class MergeHazard:
    """One order-sensitive aggregation site inside a function (REP061).

    ``kind`` is ``unsorted-dict-iteration``, ``unsorted-set-iteration``,
    or ``arrival-order-fold``; ``detail`` is a short human-readable
    description of the offending expression.
    """

    kind: str
    detail: str
    line: int
    column: int
    source: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "detail": self.detail,
            "line": self.line,
            "column": self.column,
            "source": self.source,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MergeHazard":
        return cls(
            data["kind"], data["detail"], data["line"],
            data["column"], data["source"],
        )


@dataclass(frozen=True)
class EffectSite:
    """One syntactic effect inside a function body (REP07x evidence).

    ``kind`` is the *syntactic* shape — ``store`` (assignment/augmented
    assignment through an attribute, subscript, or ``global`` name),
    ``del`` (a delete through the same), ``method`` (an in-place
    mutating method call), or ``io`` (an I/O call).  Ownership of the
    written root (self / parameter / global / closure capture) is
    classified later by :mod:`repro.analysis.effects`, which has the
    project graph in hand; ``target`` keeps the receiver display form
    (``self._breakers[...].open_until``) whose first segment is the
    root.  Sites whose root is a locally-bound name are filtered out at
    collection time — mutating a fresh local object is not an effect
    that outlives the call (aliasing through locals is out of scope).
    """

    kind: str
    target: str
    detail: str
    line: int
    column: int
    source: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "target": self.target,
            "detail": self.detail,
            "line": self.line,
            "column": self.column,
            "source": self.source,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "EffectSite":
        return cls(
            data["kind"], data["target"], data["detail"],
            data["line"], data["column"], data["source"],
        )

    @property
    def root(self) -> str:
        """First segment of the receiver (``self``, a name, ...)."""
        return self.target.split(".", 1)[0].split("[", 1)[0]


@dataclass
class FunctionSummary:
    """Everything the graph rules need to know about one function."""

    qualname: str
    name: str
    line: int
    column: int
    source: str
    params: List[ParamInfo] = field(default_factory=list)
    decorators: Tuple[str, ...] = ()
    calls: List[CallRef] = field(default_factory=list)
    taint_reasons: List[TaintReason] = field(default_factory=list)
    rng_args: List[Tuple[str, int]] = field(default_factory=list)
    parent: Optional[str] = None
    #: Free names read (not locally bound) — REP060 global-use evidence.
    loads: Tuple[str, ...] = ()
    #: ``self.x`` attributes this function assigns (REP063 mutability).
    self_writes: Tuple[str, ...] = ()
    mutable_defaults: List[StateSite] = field(default_factory=list)
    merge_hazards: List[MergeHazard] = field(default_factory=list)
    #: Syntactic effect evidence (stores/deletes/mutating calls/IO)
    #: whose receiver root is not a plain local (REP07x).
    effects: List[EffectSite] = field(default_factory=list)
    #: First read line per free name in :attr:`loads` (REP072 anchors).
    load_lines: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "qualname": self.qualname,
            "name": self.name,
            "line": self.line,
            "column": self.column,
            "source": self.source,
            "params": [p.to_dict() for p in self.params],
            "decorators": list(self.decorators),
            "calls": [c.to_dict() for c in self.calls],
            "taint_reasons": [t.to_dict() for t in self.taint_reasons],
            "rng_args": [list(pair) for pair in self.rng_args],
            "parent": self.parent,
            "loads": list(self.loads),
            "self_writes": list(self.self_writes),
            "mutable_defaults": [s.to_dict() for s in self.mutable_defaults],
            "merge_hazards": [h.to_dict() for h in self.merge_hazards],
            "effects": [e.to_dict() for e in self.effects],
            "load_lines": dict(self.load_lines),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FunctionSummary":
        return cls(
            qualname=data["qualname"],
            name=data["name"],
            line=data["line"],
            column=data["column"],
            source=data["source"],
            params=[ParamInfo.from_dict(p) for p in data["params"]],
            decorators=tuple(data["decorators"]),
            calls=[CallRef.from_dict(c) for c in data["calls"]],
            taint_reasons=[TaintReason.from_dict(t) for t in data["taint_reasons"]],
            rng_args=[(pair[0], pair[1]) for pair in data["rng_args"]],
            parent=data["parent"],
            loads=tuple(data["loads"]),
            self_writes=tuple(data["self_writes"]),
            mutable_defaults=[
                StateSite.from_dict(s) for s in data["mutable_defaults"]
            ],
            merge_hazards=[
                MergeHazard.from_dict(h) for h in data["merge_hazards"]
            ],
            effects=[
                EffectSite.from_dict(e) for e in data.get("effects", [])
            ],
            load_lines={
                k: int(v) for k, v in data.get("load_lines", {}).items()
            },
        )

    def param(self, name: str) -> Optional[ParamInfo]:
        for info in self.params:
            if info.name == name:
                return info
        return None

    @property
    def is_marked_nondeterministic(self) -> bool:
        return "nondeterministic" in self.decorators

    @property
    def is_shard_entry(self) -> bool:
        return "shard_entry" in self.decorators

    @property
    def is_merge_point(self) -> bool:
        return "merge_point" in self.decorators

    @property
    def is_pure_function(self) -> bool:
        return "pure_function" in self.decorators


@dataclass
class ClassSummary:
    """One class: bases, method names, and inferred ``self.x`` types."""

    name: str
    line: int
    bases: Tuple[str, ...] = ()
    methods: Dict[str, str] = field(default_factory=dict)  # name -> qualname
    attr_types: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    column: int = 0
    source: str = ""
    #: Class-level mutable container attributes (shared across instances
    #: *and* across threads — but not across processes: REP060).
    mutable_attrs: List[StateSite] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "line": self.line,
            "bases": list(self.bases),
            "methods": dict(self.methods),
            "attr_types": {k: list(v) for k, v in self.attr_types.items()},
            "column": self.column,
            "source": self.source,
            "mutable_attrs": [s.to_dict() for s in self.mutable_attrs],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ClassSummary":
        return cls(
            name=data["name"],
            line=data["line"],
            bases=tuple(data["bases"]),
            methods=dict(data["methods"]),
            attr_types={
                k: tuple(v) for k, v in data["attr_types"].items()
            },
            column=data["column"],
            source=data["source"],
            mutable_attrs=[
                StateSite.from_dict(s) for s in data["mutable_attrs"]
            ],
        )


@dataclass
class ModuleSummary:
    """One module's contribution to the project graph."""

    module: str
    path: str
    basename: str
    #: local name -> ("module", dotted) | ("symbol", dotted, original)
    bindings: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)
    classes: Dict[str, ClassSummary] = field(default_factory=dict)
    exports: Optional[List[ExportInfo]] = None
    referenced: Set[str] = field(default_factory=set)
    suppressions: List[Suppression] = field(default_factory=list)
    fork_labels: List[ForkLabel] = field(default_factory=list)
    shadows: List[ShadowSite] = field(default_factory=list)
    #: Module-level mutable containers (REP060 shared-state evidence).
    globals: List[StateSite] = field(default_factory=list)
    #: UPPER_CASE names bound to constant string collections (consumed
    #: by REP063 to read ``checkpoint.serde``'s SERDE_REGISTRY).
    string_sets: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "module": self.module,
            "path": self.path,
            "basename": self.basename,
            "bindings": {k: list(v) for k, v in self.bindings.items()},
            "functions": {
                k: v.to_dict() for k, v in self.functions.items()
            },
            "classes": {k: v.to_dict() for k, v in self.classes.items()},
            "exports": (
                None
                if self.exports is None
                else [e.to_dict() for e in self.exports]
            ),
            "referenced": sorted(self.referenced),
            "suppressions": [s.to_dict() for s in self.suppressions],
            "fork_labels": [f.to_dict() for f in self.fork_labels],
            "shadows": [s.to_dict() for s in self.shadows],
            "globals": [s.to_dict() for s in self.globals],
            "string_sets": {
                k: list(v) for k, v in self.string_sets.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ModuleSummary":
        return cls(
            module=data["module"],
            path=data["path"],
            basename=data["basename"],
            bindings={k: tuple(v) for k, v in data["bindings"].items()},
            functions={
                k: FunctionSummary.from_dict(v)
                for k, v in data["functions"].items()
            },
            classes={
                k: ClassSummary.from_dict(v)
                for k, v in data["classes"].items()
            },
            exports=(
                None
                if data["exports"] is None
                else [ExportInfo.from_dict(e) for e in data["exports"]]
            ),
            referenced=set(data["referenced"]),
            suppressions=[
                Suppression.from_dict(s) for s in data["suppressions"]
            ],
            fork_labels=[ForkLabel.from_dict(f) for f in data["fork_labels"]],
            shadows=[ShadowSite.from_dict(s) for s in data["shadows"]],
            globals=[StateSite.from_dict(s) for s in data["globals"]],
            string_sets={
                k: tuple(v) for k, v in data["string_sets"].items()
            },
        )

    @property
    def sanctioned(self) -> bool:
        """Whether this module defines the sanctioned wrappers."""
        return self.basename in SANCTIONED_BASENAMES


# ---------------------------------------------------------------------------
# Extraction
# ---------------------------------------------------------------------------


def _annotation_names(node: Optional[ast.AST]) -> Tuple[str, ...]:
    """Identifier leaves appearing in an annotation expression."""
    if node is None:
        return ()
    names: List[str] = []
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        token = ""
        for char in node.value:
            if char.isidentifier() or (token and char.isalnum()):
                token += char
            else:
                if token:
                    names.append(token)
                token = ""
        if token:
            names.append(token)
        return tuple(names)
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            names.append(child.id)
        elif isinstance(child, ast.Attribute):
            names.append(child.attr)
        elif isinstance(child, ast.Constant) and isinstance(child.value, str):
            names.extend(_annotation_names(child))
    return tuple(names)


def _attr_root(node: ast.Attribute) -> str:
    value = node.value
    while isinstance(value, ast.Attribute):
        value = value.value
    return value.id if isinstance(value, ast.Name) else ""


def _store_root(node: ast.AST) -> Tuple[str, str]:
    """(root name, display form) for a store/delete/mutation receiver.

    ``self._breakers[key].open_until`` → ``("self",
    "self._breakers[...].open_until")``; an unrooted receiver (a call
    result, a literal) yields ``("", "")``.
    """
    parts: List[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            parts.append("." + node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            parts.append("[...]")
            node = node.value
        elif isinstance(node, ast.Name):
            parts.append(node.id)
            return node.id, "".join(reversed(parts))
        else:
            return "", ""


def _decorator_names(node) -> Tuple[str, ...]:
    names: List[str] = []
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name):
            names.append(target.id)
        elif isinstance(target, ast.Attribute):
            names.append(target.attr)
    return tuple(names)


def _mutable_kind(value: Optional[ast.AST]) -> Optional[str]:
    """Classify a mutable-container initializer expression, or None."""
    if isinstance(value, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        if value.func.id in _MUTABLE_CONSTRUCTORS:
            return value.func.id
    return None


def _constant_strings(value: ast.AST) -> Optional[Tuple[str, ...]]:
    """The string elements of a constant collection literal, or None.

    Accepts a bare list/tuple/set display or one wrapped in a single
    ``frozenset``/``set``/``tuple``/``list`` call — the shapes a
    checked-in registry like ``SERDE_REGISTRY`` plausibly takes.
    """
    if (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Name)
        and value.func.id in ("frozenset", "set", "tuple", "list")
        and len(value.args) == 1
        and not value.keywords
    ):
        value = value.args[0]
    if not isinstance(value, (ast.List, ast.Tuple, ast.Set)):
        return None
    strings: List[str] = []
    for element in value.elts:
        if isinstance(element, ast.Constant) and isinstance(element.value, str):
            strings.append(element.value)
        else:
            return None
    return tuple(strings)


def _iter_hazard(iter_node: ast.AST) -> Optional[Tuple[str, str]]:
    """Classify an unordered iterable expression, or None.

    Returns ``(kind, detail)`` when iterating ``iter_node`` visits
    elements in an order a sharded merge must not rely on.
    """
    if isinstance(iter_node, ast.Call):
        func = iter_node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in ("items", "keys", "values")
            and not iter_node.args
        ):
            return ("unsorted-dict-iteration", f".{func.attr}()")
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return ("unsorted-set-iteration", f"{func.id}(...)")
    if isinstance(iter_node, (ast.Set, ast.SetComp)):
        return ("unsorted-set-iteration", "set expression")
    return None


def _iter_is_ordered(iter_node: ast.AST, depth: int = 0) -> bool:
    """Whether iterating ``iter_node`` has a content-determined order."""
    if depth > 4:
        return False
    if isinstance(iter_node, (ast.List, ast.Tuple, ast.Constant)):
        return True
    if isinstance(iter_node, ast.Call) and isinstance(iter_node.func, ast.Name):
        if iter_node.func.id in _ORDERED_ITER_CALLS:
            return True
        if iter_node.func.id in _ORDER_PRESERVING_CALLS and iter_node.args:
            return _iter_is_ordered(iter_node.args[0], depth + 1)
    return False


def _resolve_relative(module_name: str, is_package: bool,
                      level: int, target: Optional[str]) -> str:
    """Absolute module named by a (possibly relative) ``from`` import."""
    if level == 0:
        return target or ""
    package = module_name.split(".") if module_name else []
    if not is_package and package:
        package = package[:-1]
    ascend = level - 1
    if ascend:
        package = package[: max(0, len(package) - ascend)]
    if target:
        package = package + target.split(".")
    return ".".join(package)


class _FunctionCollector:
    """Walks one function body (not nested defs) collecting call facts."""

    def __init__(self, summarizer: "_ModuleSummarizer",
                 fn: FunctionSummary, class_ctx: Optional[ClassSummary]):
        self.summarizer = summarizer
        self.fn = fn
        self.class_ctx = class_ctx
        self.local_types: Dict[str, str] = {}
        self._loads: Set[str] = set()
        self._stores: Set[str] = set()
        self._global_decls: Set[str] = set()
        self._self_writes: Set[str] = set()
        self._load_lines: Dict[str, int] = {}
        #: (receiver root, site) pairs; local-rooted ones drop at collect().
        self._effect_candidates: List[Tuple[str, EffectSite]] = []

    # -- classification -------------------------------------------------

    def collect(self, body: Sequence[ast.stmt]) -> None:
        for statement in body:
            self._visit(statement)
        # Free names: read but never locally bound — the only reads that
        # can reach module-level state.  Declared ``global`` names are
        # free even when assigned.
        params = {param.name for param in self.fn.params}
        free = (self._loads - self._stores - params) | self._global_decls
        self.fn.loads = tuple(sorted(free))
        self.fn.load_lines = {
            name: self._load_lines[name]
            for name in free
            if name in self._load_lines
        }
        self.fn.self_writes = tuple(sorted(self._self_writes))
        # Effect sites: keep I/O unconditionally; keep stores/mutations
        # whose root outlives the call (self, a parameter, a declared
        # global, or a free name).  A root that is locally bound and not
        # declared global is a fresh local — not an escaping effect.
        seen_effects: Set[Tuple[str, str, int, int]] = set()
        kept: List[EffectSite] = []
        for root, site in self._effect_candidates:
            if site.kind != "io":
                if not root:
                    continue
                if (
                    root != "self"
                    and root in self._stores
                    and root not in self._global_decls
                ):
                    continue
            key = (site.kind, site.target, site.line, site.column)
            if key not in seen_effects:
                seen_effects.add(key)
                kept.append(site)
        self.fn.effects[:] = kept
        # Nested loops can surface one fold site twice (once per
        # enclosing loop); keep the first occurrence only.
        seen: Set[Tuple[str, str, int, int]] = set()
        unique: List[MergeHazard] = []
        for hazard in self.fn.merge_hazards:
            key = (hazard.kind, hazard.detail, hazard.line, hazard.column)
            if key not in seen:
                seen.add(key)
                unique.append(hazard)
        self.fn.merge_hazards[:] = unique

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested def: summarized separately; leave a containment edge.
            self.fn.calls.append(
                CallRef("contained", f"{self.fn.qualname}.{node.name}",
                        line=node.lineno)
            )
            self.summarizer.summarize_function(
                node, f"{self.fn.qualname}.{node.name}",
                self.class_ctx, parent=self.fn.qualname,
            )
            return
        if isinstance(node, ast.ClassDef):
            return  # local classes are out of scope for the call graph
        if isinstance(node, ast.Assign):
            self._record_assignment(node)
            self._record_store_effects(node.targets, node, "store")
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._record_store_effects([node.target], node, "store")
        elif isinstance(node, ast.AugAssign):
            self._record_store_effects([node.target], node, "store")
        elif isinstance(node, ast.Delete):
            self._record_store_effects(node.targets, node, "del")
        elif isinstance(node, ast.If):
            self._record_if_shadow(node)
        elif isinstance(node, ast.Global):
            self._global_decls.update(node.names)
        elif isinstance(node, ast.For):
            self._record_fold_hazard(node)
        if isinstance(node, ast.Call):
            self._record_call(node)
        if isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Load):
                self._loads.add(node.id)
                self._load_lines.setdefault(node.id, node.lineno)
            else:
                self._stores.add(node.id)
        if isinstance(node, ast.Attribute):
            self._record_taint_attr(node)
            if (
                not isinstance(node.ctx, ast.Load)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                self._self_writes.add(node.attr)
        if isinstance(node, (ast.For, ast.comprehension)):
            self._record_iter_hazard(node.iter)
        for child in ast.iter_child_nodes(node):
            self._visit(child)

    # -- assignments & type inference -----------------------------------

    def _infer_type(self, value: ast.AST) -> Optional[str]:
        if isinstance(value, ast.Call):
            func = value.func
            if isinstance(func, ast.Attribute) and func.attr == "fork":
                return "SeededRng"
            if isinstance(func, ast.Name):
                return func.id
            if isinstance(func, ast.Attribute):
                return func.attr
        elif isinstance(value, ast.Name):
            param = self.fn.param(value.id)
            if param is not None and param.annotation_names:
                return param.annotation_names[-1]
            return self.local_types.get(value.id)
        elif isinstance(value, ast.IfExp):
            return self._infer_type(value.body) or self._infer_type(value.orelse)
        return None

    def _record_assignment(self, node: ast.Assign) -> None:
        inferred = self._infer_type(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if inferred:
                    self.local_types[target.id] = inferred
            elif (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and self.class_ctx is not None
            ):
                if inferred:
                    self.class_ctx.attr_types.setdefault(
                        target.attr, (inferred,)
                    )
        self._record_expr_shadow(node.value)

    # -- REP042 shadow patterns -----------------------------------------

    def _injected_param(self, node: ast.AST) -> Optional[ParamInfo]:
        if isinstance(node, ast.Name):
            param = self.fn.param(node.id)
            if param is not None and param.is_injected:
                return param
        return None

    def _shadow(self, param: ParamInfo, node: ast.AST) -> None:
        self.fn_module_shadow(
            ShadowSite(
                param=param.name,
                line=getattr(node, "lineno", self.fn.line),
                column=getattr(node, "col_offset", 0),
                source=self.summarizer.source_line(
                    getattr(node, "lineno", self.fn.line)
                ),
                qualname=self.fn.qualname,
            )
        )

    def fn_module_shadow(self, site: ShadowSite) -> None:
        self.summarizer.summary.shadows.append(site)

    def _record_expr_shadow(self, value: ast.AST) -> None:
        # ``p if p is not None else <fallback>`` / ``p or <fallback>``
        if isinstance(value, ast.IfExp):
            body_param = self._injected_param(value.body)
            orelse_param = self._injected_param(value.orelse)
            if body_param is not None and orelse_param is None:
                if self._mentions(value.test, body_param.name):
                    self._shadow(body_param, value.orelse)
            elif orelse_param is not None and body_param is None:
                if self._mentions(value.test, orelse_param.name):
                    self._shadow(orelse_param, value.body)
        elif isinstance(value, ast.BoolOp) and isinstance(value.op, ast.Or):
            first = self._injected_param(value.values[0])
            if first is not None and len(value.values) > 1:
                self._shadow(first, value.values[1])

    def _record_if_shadow(self, node: ast.If) -> None:
        # ``if p is None: p = <fallback>``
        test = node.test
        if not (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Is)
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None
        ):
            return
        param = self._injected_param(test.left)
        if param is None:
            return
        for statement in node.body:
            if (
                isinstance(statement, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id == param.name
                    for t in statement.targets
                )
            ):
                self._shadow(param, statement.value)

    @staticmethod
    def _mentions(node: ast.AST, name: str) -> bool:
        return any(
            isinstance(child, ast.Name) and child.id == name
            for child in ast.walk(node)
        )

    # -- REP061 merge hazards --------------------------------------------

    def _hazard(self, kind: str, detail: str, node: ast.AST) -> None:
        line = getattr(node, "lineno", self.fn.line)
        self.fn.merge_hazards.append(
            MergeHazard(
                kind=kind,
                detail=detail,
                line=line,
                column=getattr(node, "col_offset", 0),
                source=self.summarizer.source_line(line),
            )
        )

    def _record_iter_hazard(self, iter_node: ast.AST) -> None:
        hazard = _iter_hazard(iter_node)
        if hazard is not None:
            self._hazard(hazard[0], f"iterates {hazard[1]}", iter_node)

    def _record_fold_hazard(self, node: ast.For) -> None:
        """A loop accumulating into a container in arrival order.

        Only fires when the iterable's order is not content-determined
        (``sorted(...)``/``range(...)`` folds are shard-order safe) and
        the loop body mutates an accumulator defined outside the loop.
        """
        if _iter_hazard(node.iter) is not None:
            return  # already recorded as an unsorted-iteration hazard
        if _iter_is_ordered(node.iter):
            return
        for child in ast.walk(node):
            if not (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr in _FOLD_METHODS
            ):
                continue
            receiver = child.func.value
            if isinstance(receiver, ast.Name):
                accumulator = receiver.id
            elif (
                isinstance(receiver, ast.Attribute)
                and isinstance(receiver.value, ast.Name)
                and receiver.value.id == "self"
            ):
                accumulator = f"self.{receiver.attr}"
            else:
                continue
            self._hazard(
                "arrival-order-fold",
                f"'{accumulator}.{child.func.attr}()' folds an unordered"
                " iterable in arrival order",
                child,
            )
            return

    # -- REP07x effect evidence ------------------------------------------

    def _effect(self, root: str, kind: str, target: str, detail: str,
                node: ast.AST) -> None:
        line = getattr(node, "lineno", self.fn.line)
        self._effect_candidates.append(
            (
                root,
                EffectSite(
                    kind=kind,
                    target=target,
                    detail=detail,
                    line=line,
                    column=getattr(node, "col_offset", 0),
                    source=self.summarizer.source_line(line),
                ),
            )
        )

    def _record_store_effects(self, targets: Sequence[ast.AST],
                              node: ast.stmt, kind: str) -> None:
        verb = "deletes" if kind == "del" else "assigns"
        for target in targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                self._record_store_effects(target.elts, node, kind)
                continue
            if isinstance(target, ast.Starred):
                self._record_store_effects([target.value], node, kind)
                continue
            if isinstance(target, ast.Name):
                # A plain-name (re)binding only escapes under ``global``.
                if target.id in self._global_decls:
                    self._effect(
                        target.id, kind, target.id,
                        f"{verb} global '{target.id}'", node,
                    )
                continue
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                root, display = _store_root(target)
                if display:
                    self._effect(
                        root, kind, display, f"{verb} '{display}'", node,
                    )

    def _record_effect_call(self, func: ast.Attribute, node: ast.Call) -> None:
        root = _attr_root(func)
        if (
            root in _IO_ROOTS
            or (root == "os" and func.attr in _OS_IO_ATTRS)
            or (root == "sys" and func.attr in ("write", "flush"))
            or func.attr in _IO_ATTR_CALLS
        ):
            display = f"{root}.{func.attr}" if root else func.attr
            self._effect(
                root, "io", display, f"calls {display}()", node,
            )
            return
        if func.attr in _MUTATING_METHODS:
            recv_root, display = _store_root(func.value)
            if display:
                self._effect(
                    recv_root, "method", display,
                    f"'{display}.{func.attr}()' mutates '{display}'",
                    node,
                )

    # -- call sites ------------------------------------------------------

    def _record_call(self, node: ast.Call) -> None:
        func = node.func
        line = node.lineno
        if isinstance(func, ast.Name):
            self._record_name_call(func, line)
            if func.id in _IO_NAME_CALLS:
                self._effect(
                    "", "io", func.id, f"calls {func.id}()", node,
                )
        elif isinstance(func, ast.Attribute):
            self._record_attr_call(func, node, line)
            self._record_effect_call(func, node)
        self._record_rng_args(node)

    def _record_name_call(self, func: ast.Name, line: int) -> None:
        binding = self.summarizer.summary.bindings.get(func.id)
        if binding is not None and binding[0] == "symbol":
            _, target_module, original = binding
            if self._stdlib_source(target_module, original, line):
                return
        self.fn.calls.append(CallRef("name", func.id, line=line))

    def _stdlib_source(self, target_module: str, original: str,
                       line: int) -> bool:
        """Direct taint when a from-imported stdlib reader is called."""
        if target_module == "time" and original in _WALL_TIME_ATTRS:
            self._taint("wall-clock", f"time.{original}", line)
            return True
        if target_module == "random":
            self._taint("ambient-random", f"random.{original}", line)
            return True
        if target_module == "os" and original in _OS_ENTROPY_ATTRS:
            self._taint("os-entropy", f"os.{original}", line)
            return True
        if target_module == "uuid" and original in _UUID_ENTROPY_ATTRS:
            self._taint("os-entropy", f"uuid.{original}", line)
            return True
        if target_module == "secrets":
            self._taint("os-entropy", f"secrets.{original}", line)
            return True
        return False

    def _record_attr_call(self, func: ast.Attribute, node: ast.Call,
                          line: int) -> None:
        if func.attr == "fork":
            self._record_fork(node, line)
        value = func.value
        if isinstance(value, ast.Name):
            if value.id == "self":
                self.fn.calls.append(CallRef("self", func.attr, line=line))
                return
            param = self.fn.param(value.id)
            if param is not None:
                self.fn.calls.append(
                    CallRef("param", func.attr, qualifier=value.id, line=line)
                )
                return
            local = self.local_types.get(value.id)
            if local is not None:
                self.fn.calls.append(
                    CallRef("typed", func.attr, qualifier=local, line=line)
                )
                return
            self.fn.calls.append(
                CallRef("obj", func.attr, qualifier=value.id, line=line)
            )
            return
        if (
            isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"
        ):
            self.fn.calls.append(
                CallRef("selfattr", func.attr, qualifier=value.attr, line=line)
            )
            return
        self.fn.calls.append(CallRef("other", func.attr, line=line))

    def _record_fork(self, node: ast.Call, line: int) -> None:
        if node.args and isinstance(node.args[0], ast.Constant) and isinstance(
            node.args[0].value, str
        ):
            self.summarizer.summary.fork_labels.append(
                ForkLabel(
                    label=node.args[0].value,
                    line=line,
                    column=node.col_offset,
                    source=self.summarizer.source_line(line),
                    qualname=self.fn.qualname,
                )
            )

    def _record_rng_args(self, node: ast.Call) -> None:
        """Bare (un-forked) rng streams passed onward as arguments."""
        arguments = list(node.args) + [
            kw.value for kw in node.keywords if kw.value is not None
        ]
        for argument in arguments:
            identifier = self._rng_identifier(argument)
            if identifier is not None:
                self.fn.rng_args.append((identifier, node.lineno))

    def _rng_identifier(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name):
            param = self.fn.param(node.id)
            if param is not None and param.is_rng:
                return node.id
            if self.local_types.get(node.id) == "SeededRng":
                return node.id
        elif (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and self.class_ctx is not None
        ):
            if "SeededRng" in self.class_ctx.attr_types.get(node.attr, ()):
                return f"self.{node.attr}"
        return None

    # -- direct taint ----------------------------------------------------

    def _taint(self, kind: str, detail: str, line: int) -> None:
        self.fn.taint_reasons.append(TaintReason(kind, detail, line))

    def _record_taint_attr(self, node: ast.Attribute) -> None:
        root = _attr_root(node)
        if root == "random":
            self._taint("ambient-random", f"random.{node.attr}", node.lineno)
        elif root == "time" and node.attr in _WALL_TIME_ATTRS:
            self._taint("wall-clock", f"time.{node.attr}", node.lineno)
        elif root in ("datetime", "date") and node.attr in _WALL_DATETIME_ATTRS:
            self._taint("wall-clock", f"{root}.{node.attr}", node.lineno)
        elif root == "os" and node.attr in _OS_ENTROPY_ATTRS:
            self._taint("os-entropy", f"os.{node.attr}", node.lineno)
        elif root == "uuid" and node.attr in _UUID_ENTROPY_ATTRS:
            self._taint("os-entropy", f"uuid.{node.attr}", node.lineno)
        elif root == "secrets":
            self._taint("os-entropy", f"secrets.{node.attr}", node.lineno)


class _ModuleSummarizer:
    """Builds a :class:`ModuleSummary` from one parsed module."""

    def __init__(self, context: ModuleContext, module_name: str) -> None:
        self.context = context
        self.summary = ModuleSummary(
            module=module_name,
            path=context.path,
            basename=context.basename,
        )

    def source_line(self, lineno: int) -> str:
        return self.context.source_line(lineno)

    def run(self) -> ModuleSummary:
        self._collect_bindings_and_refs()
        self._collect_exports()
        self._collect_module_state()
        self.summary.suppressions = scan_suppressions(self.context.lines)
        for node in self.context.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.summarize_function(node, node.name, None)
            elif isinstance(node, ast.ClassDef):
                self._summarize_class(node)
        return self.summary

    # -- pass 1: bindings, references -----------------------------------

    def _collect_bindings_and_refs(self) -> None:
        is_package = self.context.basename == "__init__.py"
        for node in ast.walk(self.context.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.summary.bindings[alias.asname] = (
                            "module", alias.name,
                        )
                    else:
                        head = alias.name.split(".")[0]
                        self.summary.bindings[head] = ("module", head)
            elif isinstance(node, ast.ImportFrom):
                resolved = _resolve_relative(
                    self.summary.module, is_package, node.level, node.module
                )
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.summary.bindings[local] = (
                        "symbol", resolved, alias.name,
                    )
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                self.summary.referenced.add(node.id)
            elif isinstance(node, ast.Attribute):
                self.summary.referenced.add(node.attr)

    # -- pass 2: exports --------------------------------------------------

    def _collect_exports(self) -> None:
        for node in self.context.tree.body:
            if not isinstance(node, ast.Assign):
                continue
            if not any(
                isinstance(t, ast.Name) and t.id == "__all__"
                for t in node.targets
            ):
                continue
            if not isinstance(node.value, (ast.List, ast.Tuple)):
                continue
            exports: List[ExportInfo] = []
            for element in node.value.elts:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    exports.append(
                        ExportInfo(
                            name=element.value,
                            line=element.lineno,
                            column=element.col_offset,
                            source=self.source_line(element.lineno),
                        )
                    )
            self.summary.exports = exports

    # -- pass 2b: module-level state (REP060/REP063) ----------------------

    @staticmethod
    def _assigned_names(node: ast.stmt) -> Tuple[List[str], Optional[ast.AST]]:
        """Plain-name targets and the value of an (ann)assignment."""
        if isinstance(node, ast.Assign):
            names = [
                target.id
                for target in node.targets
                if isinstance(target, ast.Name)
            ]
            return names, node.value
        if isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            return [node.target.id], node.value
        return [], None

    def _record_state(self, sink: List[StateSite], name: str, kind: str,
                      node: ast.stmt) -> None:
        sink.append(
            StateSite(
                name=name,
                line=node.lineno,
                column=node.col_offset,
                source=self.source_line(node.lineno),
                kind=kind,
            )
        )

    def _collect_module_state(self) -> None:
        for node in self.context.tree.body:
            names, value = self._assigned_names(node)
            if value is None or not names:
                continue
            strings = _constant_strings(value)
            if strings is not None:
                for name in names:
                    if name.isupper():
                        self.summary.string_sets[name] = strings
            kind = _mutable_kind(value)
            if kind is None:
                continue
            for name in names:
                if name.startswith("__") and name.endswith("__"):
                    continue  # __all__ and friends are module protocol
                self._record_state(self.summary.globals, name, kind, node)

    # -- pass 3: functions & classes --------------------------------------

    def summarize_function(self, node, qualname: str,
                           class_ctx: Optional[ClassSummary],
                           parent: Optional[str] = None) -> FunctionSummary:
        args = node.args
        params = [
            ParamInfo(arg.arg, _annotation_names(arg.annotation))
            for arg in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            )
        ]
        fn = FunctionSummary(
            qualname=qualname,
            name=node.name,
            line=node.lineno,
            column=node.col_offset,
            source=self.source_line(node.lineno),
            params=params,
            decorators=_decorator_names(node),
            parent=parent,
        )
        self.summary.functions[qualname] = fn
        if fn.is_marked_nondeterministic:
            fn.taint_reasons.append(
                TaintReason("marker", "@nondeterministic", node.lineno)
            )
        self._collect_mutable_defaults(fn, args)
        _FunctionCollector(self, fn, class_ctx).collect(node.body)
        return fn

    def _collect_mutable_defaults(self, fn: FunctionSummary,
                                  args: ast.arguments) -> None:
        positional = list(args.posonlyargs) + list(args.args)
        defaulted = positional[len(positional) - len(args.defaults):]
        pairs = list(zip(defaulted, args.defaults))
        pairs.extend(
            (arg, default)
            for arg, default in zip(args.kwonlyargs, args.kw_defaults)
            if default is not None
        )
        for arg, default in pairs:
            kind = _mutable_kind(default)
            if kind is not None:
                fn.mutable_defaults.append(
                    StateSite(
                        name=arg.arg,
                        line=default.lineno,
                        column=default.col_offset,
                        source=self.source_line(default.lineno),
                        kind=kind,
                    )
                )

    def _summarize_class(self, node: ast.ClassDef) -> None:
        bases: List[str] = []
        for base in node.bases:
            if isinstance(base, ast.Name):
                bases.append(base.id)
            elif isinstance(base, ast.Attribute):
                bases.append(base.attr)
        summary = ClassSummary(
            name=node.name, line=node.lineno, bases=tuple(bases),
            column=node.col_offset, source=self.source_line(node.lineno),
        )
        self.summary.classes[node.name] = summary
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{node.name}.{child.name}"
                summary.methods[child.name] = qualname
                self.summarize_function(child, qualname, summary)
                continue
            names, value = self._assigned_names(child)
            if value is None:
                continue
            kind = _mutable_kind(value)
            if kind is None:
                continue
            for name in names:
                if name.startswith("__") and name.endswith("__"):
                    continue  # __slots__ and friends are class protocol
                self._record_state(summary.mutable_attrs, name, kind, child)


def summarize_module(context: ModuleContext,
                     module_name: Optional[str] = None) -> ModuleSummary:
    """Distil one parsed module into its :class:`ModuleSummary`."""
    name = module_name if module_name is not None else module_name_for(
        context.path
    )
    return _ModuleSummarizer(context, name).run()


# ---------------------------------------------------------------------------
# The project graph
# ---------------------------------------------------------------------------

#: A function key: (module name, qualified function name).
FunctionKey = Tuple[str, str]

#: Sentinel returned when a call is sanitized by an injected dependency.
SANITIZED = "sanitized"


class ProjectGraph:
    """Summaries stitched into symbol tables and a call graph.

    Parameters
    ----------
    summaries:
        One :class:`ModuleSummary` per analyzed file.
    external_references:
        Identifiers seen outside the analyzed tree (tests, examples) —
        consumed by the dead-export rule (REP043).
    star_imported_modules:
        Dotted module names star-imported (``from m import *``) by the
        reference roots; a star import materializes every ``__all__``
        export without naming it, so those exports count as referenced.
    """

    def __init__(self, summaries: Sequence[ModuleSummary],
                 external_references: Optional[Set[str]] = None,
                 star_imported_modules: Optional[Set[str]] = None) -> None:
        self.summaries = list(summaries)
        self.modules: Dict[str, ModuleSummary] = {}
        for summary in self.summaries:
            self.modules[summary.module] = summary
        self.external_references: Set[str] = set(external_references or ())
        self.star_imported_modules: Set[str] = set(
            star_imported_modules or ()
        )
        # method name -> [(module, class name)]
        self._method_index: Dict[str, List[Tuple[str, str]]] = {}
        # class name -> [(module, class name)]
        self._class_index: Dict[str, List[Tuple[str, str]]] = {}
        for summary in self.summaries:
            for class_name in sorted(summary.classes):
                klass = summary.classes[class_name]
                self._class_index.setdefault(class_name, []).append(
                    (summary.module, class_name)
                )
                for method_name in sorted(klass.methods):
                    self._method_index.setdefault(method_name, []).append(
                        (summary.module, class_name)
                    )

    # -- lookups ---------------------------------------------------------

    def functions(self) -> List[Tuple[ModuleSummary, FunctionSummary]]:
        """Every function in the project, deterministically ordered."""
        result: List[Tuple[ModuleSummary, FunctionSummary]] = []
        for summary in sorted(self.summaries, key=lambda s: s.path):
            for qualname in sorted(summary.functions):
                result.append((summary, summary.functions[qualname]))
        return result

    def function(self, key: FunctionKey) -> Optional[FunctionSummary]:
        summary = self.modules.get(key[0])
        if summary is None:
            return None
        return summary.functions.get(key[1])

    def _resolve_class(self, module: ModuleSummary,
                       name: str) -> Optional[Tuple[str, str]]:
        """Resolve a class *name* as seen from ``module``."""
        if name in module.classes:
            return (module.module, name)
        binding = module.bindings.get(name)
        if binding is not None and binding[0] == "symbol":
            target = self.modules.get(binding[1])
            if target is not None and binding[2] in target.classes:
                return (target.module, binding[2])
        candidates = self._class_index.get(name, ())
        if len(candidates) == 1:
            return candidates[0]
        return None

    def _method_key(self, class_key: Tuple[str, str],
                    method: str, depth: int = 0) -> Optional[FunctionKey]:
        """Find ``method`` on a class or its (project-resolvable) bases."""
        if depth > 8:
            return None
        module = self.modules.get(class_key[0])
        if module is None:
            return None
        klass = module.classes.get(class_key[1])
        if klass is None:
            return None
        if method in klass.methods:
            return (module.module, klass.methods[method])
        for base in klass.bases:
            base_key = self._resolve_class(module, base)
            if base_key is not None and base_key != class_key:
                found = self._method_key(base_key, method, depth + 1)
                if found is not None:
                    return found
        return None

    def _ctor_key(self, class_key: Tuple[str, str]) -> Optional[FunctionKey]:
        return self._method_key(class_key, "__init__")

    # -- call resolution --------------------------------------------------

    def resolve_call(self, module: ModuleSummary, fn: FunctionSummary,
                     call: CallRef):
        """Resolve one call site.

        Returns a list of :data:`FunctionKey` targets (possibly empty
        when the callee is not a project function), or the
        :data:`SANITIZED` sentinel when the call goes through an
        injected ``SeededRng``/``SimulationClock`` parameter.
        """
        if call.kind == "contained":
            return [(module.module, call.name)]
        if call.kind == "name":
            return self._resolve_name_call(module, call.name)
        if call.kind == "self":
            return self._resolve_self_call(module, fn, call.name)
        if call.kind == "param":
            return self._resolve_param_call(module, fn, call)
        if call.kind == "typed":
            return self._resolve_typed_call(module, call.qualifier, call.name)
        if call.kind == "selfattr":
            return self._resolve_selfattr_call(module, fn, call)
        if call.kind == "obj":
            return self._resolve_obj_call(module, call)
        if call.kind == "other":
            return self._fallback(call.name)
        return []

    def _resolve_name_call(self, module: ModuleSummary, name: str,
                           depth: int = 0):
        if depth > 8:
            return []
        if name in module.functions:
            return [(module.module, name)]
        if name in module.classes:
            if name in SANITIZER_TYPES:
                return SANITIZED
            ctor = self._ctor_key((module.module, name))
            return [ctor] if ctor else []
        binding = module.bindings.get(name)
        if binding is not None and binding[0] == "symbol":
            target = self.modules.get(binding[1])
            if target is not None:
                original = binding[2]
                if original in SANITIZER_TYPES and original in target.classes:
                    return SANITIZED
                # Follow re-export chains: the target may itself only
                # *bind* the name (``from .b import helper`` in a
                # package __init__).
                return self._resolve_name_call(target, original, depth + 1)
        if name in SANITIZER_TYPES:
            return SANITIZED
        return []

    def _resolve_self_call(self, module: ModuleSummary, fn: FunctionSummary,
                           method: str):
        class_name = fn.qualname.split(".")[0]
        if class_name in module.classes:
            found = self._method_key((module.module, class_name), method)
            return [found] if found else []
        return []

    def _types_to_methods(self, module: ModuleSummary,
                          type_names: Sequence[str], method: str):
        if any(name in SANITIZER_TYPES for name in type_names):
            return SANITIZED
        targets: List[FunctionKey] = []
        for type_name in type_names:
            class_key = self._resolve_class(module, type_name)
            if class_key is None:
                continue
            found = self._method_key(class_key, method)
            if found is not None:
                targets.append(found)
        if targets:
            return targets
        return self._fallback(method)

    def _resolve_param_call(self, module: ModuleSummary, fn: FunctionSummary,
                            call: CallRef):
        param = fn.param(call.qualifier)
        if param is None:
            return self._fallback(call.name)
        if param.is_injected:
            return SANITIZED
        if param.annotation_names:
            return self._types_to_methods(
                module, param.annotation_names, call.name
            )
        return self._fallback(call.name)

    def _resolve_typed_call(self, module: ModuleSummary, type_name: str,
                            method: str):
        return self._types_to_methods(module, (type_name,), method)

    def _resolve_selfattr_call(self, module: ModuleSummary,
                               fn: FunctionSummary, call: CallRef):
        class_name = fn.qualname.split(".")[0]
        klass = module.classes.get(class_name)
        if klass is not None:
            attr_types = klass.attr_types.get(call.qualifier)
            if attr_types:
                return self._types_to_methods(module, attr_types, call.name)
        if call.qualifier in ("rng", "_rng", "clock", "_clock"):
            return SANITIZED
        return self._fallback(call.name)

    def _resolve_obj_call(self, module: ModuleSummary, call: CallRef):
        binding = module.bindings.get(call.qualifier)
        if binding is None:
            return self._fallback(call.name)
        if binding[0] == "module":
            target = self.modules.get(binding[1])
            if target is None:
                return []
            return self._resolve_name_call(target, call.name)
        # Symbol binding: ``CLS.method()`` or ``from . import submodule``.
        target = self.modules.get(binding[1])
        submodule = self.modules.get(f"{binding[1]}.{binding[2]}")
        if submodule is not None:
            return self._resolve_name_call(submodule, call.name)
        if target is not None and binding[2] in target.classes:
            if binding[2] in SANITIZER_TYPES:
                return SANITIZED
            found = self._method_key((target.module, binding[2]), call.name)
            return [found] if found else []
        return self._fallback(call.name)

    def _fallback(self, method: str):
        """Unique-method-name resolution for unresolvable receivers."""
        if method in _FALLBACK_DENYLIST:
            return []
        owners = self._method_index.get(method, ())
        if len(owners) == 1:
            return [self._method_key(owners[0], method)]
        return []

    # -- shard boundary (REP06x) -------------------------------------------

    def shard_entries(self) -> List[FunctionKey]:
        """Functions declared ``@shard_entry``, sorted."""
        return sorted(
            (summary.module, fn.qualname)
            for summary, fn in self.functions()
            if fn.is_shard_entry
        )

    def merge_points(self) -> List[FunctionKey]:
        """Functions declared ``@merge_point``, sorted."""
        return sorted(
            (summary.module, fn.qualname)
            for summary, fn in self.functions()
            if fn.is_merge_point
        )

    def resolve_global(
        self, module: ModuleSummary, name: str
    ) -> Optional[Tuple[ModuleSummary, StateSite]]:
        """Resolve a free name to a module-level mutable global.

        Looks in the reading module itself, then through a ``from``
        import binding into the defining module.  Returns the defining
        summary and the state site, or None when the name is not a
        known mutable global.
        """
        for site in module.globals:
            if site.name == name:
                return (module, site)
        binding = module.bindings.get(name)
        if binding is not None and binding[0] == "symbol":
            target = self.modules.get(binding[1])
            if target is not None:
                for site in target.globals:
                    if site.name == binding[2]:
                        return (target, site)
        return None

    def resolve_class_reference(
        self, module: ModuleSummary, name: str
    ) -> Optional[Tuple[str, str]]:
        """Resolve a class name as seen from ``module`` (public hook)."""
        return self._resolve_class(module, name)

    def class_summary(
        self, class_key: Tuple[str, str]
    ) -> Optional[ClassSummary]:
        """The :class:`ClassSummary` for a ``(module, class)`` key."""
        summary = self.modules.get(class_key[0])
        if summary is None:
            return None
        return summary.classes.get(class_key[1])

    # -- edges -------------------------------------------------------------

    def call_edges(self) -> Dict[FunctionKey, List[FunctionKey]]:
        """Caller → callee edges, sanitized edges dropped, sorted."""
        edges: Dict[FunctionKey, List[FunctionKey]] = {}
        for summary, fn in self.functions():
            key: FunctionKey = (summary.module, fn.qualname)
            targets: Set[FunctionKey] = set()
            for call in fn.calls:
                resolved = self.resolve_call(summary, fn, call)
                if resolved == SANITIZED:
                    continue
                for target in resolved:
                    if target is not None and self.function(target) is not None:
                        targets.add(target)
            edges[key] = sorted(targets)
        return edges
