"""API-hygiene rules (REP020–REP022).

Convention violations that do not corrupt determinism by themselves but
reliably hide the bugs that do: shared mutable defaults, exception
handlers that swallow :class:`~repro.errors.ReproError` subclasses
indiscriminately, and public modules without an explicit ``__all__``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .findings import Severity
from .rules import ModuleContext, Rule, register

__all__ = [
    "MutableDefaultRule",
    "OverBroadExceptRule",
    "MissingAllRule",
]

_MUTABLE_CALLS = frozenset({"list", "dict", "set"})
_BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CALLS
    return False


@register
class MutableDefaultRule(Rule):
    """REP020: mutable default arguments.

    ``def f(x, seen=[])`` shares one list across every call — state leaks
    between simulated worlds that should be independent.  Default to
    ``None`` and construct inside the function.
    """

    rule_id = "REP020"
    title = "mutable default argument"
    severity = Severity.ERROR

    def check(self, module: ModuleContext) -> Iterator:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    yield self.finding(
                        module,
                        default,
                        f"mutable default argument in '{node.name}()'; "
                        "default to None and build inside the function",
                    )


@register
class OverBroadExceptRule(Rule):
    """REP021: bare or over-broad ``except``.

    ``except:`` and ``except Exception:`` swallow every ``ReproError``
    (including :class:`SimulationError`, which exists to fail loudly on
    impossible states).  Catch the narrowest class that the protected
    block can actually raise.
    """

    rule_id = "REP021"
    title = "over-broad except"
    severity = Severity.WARNING

    def check(self, module: ModuleContext) -> Iterator:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    module, node,
                    "bare 'except:' swallows every error; catch a "
                    "specific exception class",
                )
                continue
            for name_node in self._exception_names(node.type):
                if name_node.id in _BROAD_EXCEPTIONS:
                    yield self.finding(
                        module, node,
                        f"'except {name_node.id}' is over-broad; catch "
                        "the narrowest ReproError subclass instead",
                    )

    @staticmethod
    def _exception_names(node: ast.AST):
        if isinstance(node, ast.Name):
            yield node
        elif isinstance(node, ast.Tuple):
            for element in node.elts:
                if isinstance(element, ast.Name):
                    yield element


@register
class MissingAllRule(Rule):
    """REP022: public module without ``__all__``.

    Every importable module declares its public surface explicitly so
    the API docs and star-import behaviour cannot drift from intent.
    Entry-point scripts (``__main__.py``) and private modules
    (``_name.py``) are exempt, as are modules that define nothing.
    """

    rule_id = "REP022"
    title = "missing __all__"
    severity = Severity.WARNING
    exempt_basenames = frozenset({"__main__.py", "conftest.py", "setup.py"})

    def applies_to(self, module: ModuleContext) -> bool:
        if not super().applies_to(module):
            return False
        stem = module.basename[: -len(".py")]
        return not (stem.startswith("_") and stem != "__init__")

    def check(self, module: ModuleContext) -> Iterator:
        defines_public = False
        for node in module.tree.body:
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name):
                        if target.id == "__all__":
                            return
                        if not target.id.startswith("_"):
                            defines_public = True
            elif isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                if not node.name.startswith("_"):
                    defines_public = True
        if defines_public:
            yield self.finding(
                module,
                module.tree,
                "public module defines names but no __all__; declare "
                "the public surface explicitly",
            )
