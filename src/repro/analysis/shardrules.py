"""The REP06x decade: shard-safety rules for the planned sharded study.

ROADMAP item 1 fans the six-week study out across worker processes.
That only preserves byte-identical artifacts if nothing inside the
shard boundary relies on cross-process sharing, merge order, or RNG
streams owned by another shard.  These rules prove (conservatively)
those properties over the :class:`~repro.analysis.graph.ProjectGraph`,
using the shard boundary declared with
:func:`repro.markers.shard_entry` / :func:`repro.markers.merge_point`:

* **REP060** — module-level or class-level mutable state (globals,
  mutable class attributes, mutable default arguments) reachable from a
  declared shard entry point.  Each worker process mutates a private
  copy, so cross-shard artifacts silently diverge.
* **REP061** — order-sensitive aggregation inside a declared merge
  point: unsorted dict/set iteration or a fold that accumulates an
  unordered iterable in arrival order.  Merge output must be a pure
  function of shard *contents*, never shard *arrival order*.
* **REP062** — RNG-stream escape: a ``SeededRng`` fork-labelled stream
  reachable from two different shard entry points, or from one entry
  point *and* merge code.  Fork-label ownership must follow the process
  boundary, extending the single-process audit REP041 performs.
* **REP063** — checkpoint blind spots: a mutable class used inside the
  shard boundary whose name is absent from ``checkpoint.serde``'s
  ``SERDE_REGISTRY`` — state that would silently not survive a
  per-shard resume.

Every finding carries a taint-style witness chain from the declared
boundary function down to the evidence site, mirroring
:mod:`repro.analysis.taint`'s traces.  With no declared entry points
the boundary-scoped rules emit nothing: the decade is inert until a
tree opts in, and load-bearing from the first declaration on.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from .findings import Finding, Severity
from .graph import FunctionKey, ProjectGraph
from .rules import ProjectRule, register

__all__ = [
    "OrderSensitiveMergeRule",
    "RngStreamEscapeRule",
    "SharedMutableStateRule",
    "UnregisteredCheckpointStateRule",
]

#: The constant in ``checkpoint.serde`` naming every class whose state
#: the snapshot covers; REP063 audits shard-reachable classes against it.
SERDE_REGISTRY_NAME = "SERDE_REGISTRY"

#: Methods whose ``self.x`` writes are construction, not mutation.
_CTOR_METHODS = frozenset({"__init__", "__post_init__", "__new__"})


def _closure(
    edges: Dict[FunctionKey, List[FunctionKey]],
    roots: List[FunctionKey],
) -> Dict[FunctionKey, Optional[FunctionKey]]:
    """Callee-direction reachability with BFS parent links.

    Returns a parent map whose keys are every function reachable from
    ``roots`` (roots map to None).  Work is processed in sorted order at
    every step so witness chains are identical on every run.
    """
    parents: Dict[FunctionKey, Optional[FunctionKey]] = {}
    frontier = sorted(set(roots))
    for root in frontier:
        parents[root] = None
    while frontier:
        next_frontier: List[FunctionKey] = []
        for caller in frontier:
            for callee in edges.get(caller, ()):
                if callee not in parents:
                    parents[callee] = caller
                    next_frontier.append(callee)
        next_frontier.sort()
        frontier = next_frontier
    return parents


def _chain(
    parents: Dict[FunctionKey, Optional[FunctionKey]], key: FunctionKey
) -> Tuple[FunctionKey, ...]:
    """The witness chain from a closure root down to ``key``."""
    chain = [key]
    parent = parents.get(key)
    while parent is not None:
        chain.append(parent)
        parent = parents.get(parent)
    return tuple(reversed(chain))


def _chain_str(chain: Tuple[FunctionKey, ...]) -> str:
    return " -> ".join(f"{module}.{qualname}" for module, qualname in chain)


def _key_str(key: FunctionKey) -> str:
    return f"{key[0]}.{key[1]}"


@register
class SharedMutableStateRule(ProjectRule):
    """REP060: mutable state shared across shard worker processes."""

    rule_id = "REP060"
    title = "mutable state inside the shard boundary"
    severity = Severity.ERROR

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        entries = graph.shard_entries()
        if not entries:
            return
        parents = _closure(graph.call_edges(), entries)
        reachable = sorted(parents)
        reported: Set[Tuple[str, int, str]] = set()

        # Module-level mutable globals read by shard-reachable code.
        for key in reachable:
            fn = graph.function(key)
            module = graph.modules.get(key[0])
            if fn is None or module is None:
                continue
            for name in fn.loads:
                resolved = graph.resolve_global(module, name)
                if resolved is None:
                    continue
                owner, site = resolved
                if not self.applies_to_summary(owner):
                    continue
                dedup = (owner.path, site.line, site.name)
                if dedup in reported:
                    continue
                reported.add(dedup)
                yield Finding(
                    rule_id=self.rule_id,
                    path=owner.path,
                    line=site.line,
                    column=site.column,
                    message=(
                        f"module-level {site.kind} '{site.name}' is read"
                        f" inside the shard boundary"
                        f" ({_chain_str(_chain(parents, key))}); each"
                        " worker process mutates a private copy, so"
                        " cross-shard state silently diverges — make it"
                        " immutable or pass per-shard state explicitly"
                    ),
                    severity=self.severity,
                    source=site.source,
                )

        # Class-level mutable attributes on shard-reachable classes.
        for key in reachable:
            module = graph.modules.get(key[0])
            if module is None or not self.applies_to_summary(module):
                continue
            class_name = key[1].split(".")[0]
            klass = module.classes.get(class_name)
            if klass is None:
                continue
            for site in klass.mutable_attrs:
                dedup = (module.path, site.line, site.name)
                if dedup in reported:
                    continue
                reported.add(dedup)
                yield Finding(
                    rule_id=self.rule_id,
                    path=module.path,
                    line=site.line,
                    column=site.column,
                    message=(
                        f"class-level {site.kind}"
                        f" '{class_name}.{site.name}' is mutable state"
                        " shared by every instance inside the shard"
                        f" boundary ({_chain_str(_chain(parents, key))});"
                        " use an instance attribute or a default_factory"
                    ),
                    severity=self.severity,
                    source=site.source,
                )

        # Mutable default arguments on shard-reachable functions.
        for key in reachable:
            fn = graph.function(key)
            module = graph.modules.get(key[0])
            if fn is None or module is None:
                continue
            if not self.applies_to_summary(module):
                continue
            for site in fn.mutable_defaults:
                dedup = (module.path, site.line, f"{fn.qualname}:{site.name}")
                if dedup in reported:
                    continue
                reported.add(dedup)
                yield Finding(
                    rule_id=self.rule_id,
                    path=module.path,
                    line=site.line,
                    column=site.column,
                    message=(
                        f"'{fn.qualname}' has mutable default"
                        f" '{site.name}' ({site.kind}) inside the shard"
                        f" boundary ({_chain_str(_chain(parents, key))});"
                        " the default accumulates per-process state —"
                        " default to None and construct per call"
                    ),
                    severity=self.severity,
                    source=site.source,
                )


@register
class OrderSensitiveMergeRule(ProjectRule):
    """REP061: aggregation order leaks into a declared merge point."""

    rule_id = "REP061"
    title = "order-sensitive aggregation at a merge point"
    severity = Severity.ERROR

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        for summary, fn in graph.functions():
            if not fn.is_merge_point or not self.applies_to_summary(summary):
                continue
            for hazard in fn.merge_hazards:
                yield Finding(
                    rule_id=self.rule_id,
                    path=summary.path,
                    line=hazard.line,
                    column=hazard.column,
                    message=(
                        f"merge point '{fn.qualname}' {hazard.detail}"
                        f" ({hazard.kind}); merge output must be a pure"
                        " function of shard contents, not arrival order"
                        " — iterate sorted(...) or fold into an"
                        " order-insensitive structure"
                    ),
                    severity=self.severity,
                    source=hazard.source,
                )


@register
class RngStreamEscapeRule(ProjectRule):
    """REP062: a fork-labelled stream crosses the shard boundary."""

    rule_id = "REP062"
    title = "rng stream escapes the shard boundary"
    severity = Severity.ERROR

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        entries = graph.shard_entries()
        if not entries:
            return
        edges = graph.call_edges()
        entry_parents = {entry: _closure(edges, [entry]) for entry in entries}
        merges = graph.merge_points()
        merge_parents = _closure(edges, merges) if merges else {}

        for summary in sorted(graph.summaries, key=lambda s: s.path):
            if not self.applies_to_summary(summary):
                continue
            for fork in summary.fork_labels:
                key = (summary.module, fork.qualname)
                owners = [
                    entry for entry in entries
                    if key in entry_parents[entry]
                ]
                if len(owners) >= 2:
                    chains = "; ".join(
                        _chain_str(_chain(entry_parents[entry], key))
                        for entry in owners
                    )
                    yield Finding(
                        rule_id=self.rule_id,
                        path=summary.path,
                        line=fork.line,
                        column=fork.column,
                        message=(
                            f"stream '{fork.label}' is forked inside"
                            f" {len(owners)} shard entry points"
                            f" ({chains}); each worker would draw the"
                            " same sequence — fork per-shard children"
                            " at the boundary instead"
                        ),
                        severity=self.severity,
                        source=fork.source,
                    )
                elif owners and key in merge_parents:
                    yield Finding(
                        rule_id=self.rule_id,
                        path=summary.path,
                        line=fork.line,
                        column=fork.column,
                        message=(
                            f"stream '{fork.label}' is owned by shard"
                            f" entry point {_key_str(owners[0])} but also"
                            " flows into merge code"
                            f" ({_chain_str(_chain(merge_parents, key))});"
                            " merge code must not draw from shard-owned"
                            " streams"
                        ),
                        severity=self.severity,
                        source=fork.source,
                    )


@register
class UnregisteredCheckpointStateRule(ProjectRule):
    """REP063: shard-reachable mutable class missing from the registry."""

    rule_id = "REP063"
    title = "mutable shard state absent from the checkpoint registry"
    severity = Severity.ERROR

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        entries = graph.shard_entries()
        if not entries:
            return
        registry: Optional[Set[str]] = None
        for summary in sorted(graph.summaries, key=lambda s: s.path):
            names = summary.string_sets.get(SERDE_REGISTRY_NAME)
            if names is not None:
                registry = (registry or set()) | set(names)
        if registry is None:
            # No registry in the analyzed scope — nothing to audit
            # against (the rule never guesses a registry).
            return

        parents = _closure(graph.call_edges(), entries)
        witnesses: Dict[Tuple[str, str], FunctionKey] = {}
        # The class owning a declared entry-point method is shard state
        # itself; so is every class constructed inside the closure.
        for key in sorted(parents):
            module = graph.modules.get(key[0])
            fn = graph.function(key)
            if module is None or fn is None:
                continue
            class_name = key[1].split(".")[0]
            if class_name in module.classes:
                class_key = (module.module, class_name)
                witnesses.setdefault(class_key, key)
            for call in fn.calls:
                if call.kind == "name":
                    resolved = graph.resolve_class_reference(module, call.name)
                elif call.kind == "typed":
                    resolved = graph.resolve_class_reference(
                        module, call.qualifier
                    )
                else:
                    continue
                if resolved is not None:
                    witnesses.setdefault(resolved, key)

        for class_key in sorted(witnesses):
            klass = graph.class_summary(class_key)
            owner = graph.modules.get(class_key[0])
            if klass is None or owner is None:
                continue
            if not self.applies_to_summary(owner):
                continue
            if klass.name in registry:
                continue
            if not self._is_mutable(owner, klass):
                continue
            chain = _chain_str(_chain(parents, witnesses[class_key]))
            yield Finding(
                rule_id=self.rule_id,
                path=owner.path,
                line=klass.line,
                column=klass.column,
                message=(
                    f"mutable class '{klass.name}' is used inside the"
                    f" shard boundary ({chain}) but absent from"
                    " checkpoint.serde's SERDE_REGISTRY; its state"
                    " silently fails to survive a per-shard resume —"
                    " register it or allow[REP063] with a reason"
                ),
                severity=self.severity,
                source=klass.source,
            )

    @staticmethod
    def _is_mutable(owner, klass) -> bool:
        """Mutable = class-level containers or post-init self writes."""
        if klass.mutable_attrs:
            return True
        for method_name in sorted(klass.methods):
            if method_name in _CTOR_METHODS:
                continue
            fn = owner.functions.get(klass.methods[method_name])
            if fn is not None and fn.self_writes:
                return True
        return False
