"""The REP04x decade: project-wide determinism-contract rules.

These rules consume the :class:`~repro.analysis.graph.ProjectGraph`
instead of a single module, so they can prove (conservatively) the
properties the per-file REP00x rules only spot-check:

* **REP040** — a function with no nondeterminism of its own calls,
  possibly through several hops, one that reads the wall clock, ambient
  randomness, or OS entropy, and no injected ``SeededRng`` /
  ``SimulationClock`` parameter sanitizes the chain.
* **REP041** — correlated randomness: the same ``SeededRng.fork()``
  label used at two different sites, or one un-forked stream handed to
  multiple consumers; either way two "independent" subsystems draw the
  same numbers.
* **REP042** — an injected rng/clock parameter silently substituted by
  a locally-constructed fallback (``rng if rng is not None else
  SeededRng(...)``), which makes the injection contract optional.
* **REP043** — a name exported through ``__all__`` that nothing in the
  project (or its tests/examples/benchmarks) references: dead public
  surface that rots unchecked.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from .findings import Finding, Severity
from .graph import ForkLabel, FunctionKey, ProjectGraph
from .rules import ProjectRule, register
from .taint import propagate_taint

__all__ = [
    "CorrelatedStreamsRule",
    "DeadExportRule",
    "ShadowedInjectionRule",
    "TransitiveNondeterminismRule",
]


def _chain_str(chain: Tuple[FunctionKey, ...]) -> str:
    return " -> ".join(f"{module}.{qualname}" for module, qualname in chain)


@register
class TransitiveNondeterminismRule(ProjectRule):
    """REP040: nondeterminism reaches this function through its calls."""

    rule_id = "REP040"
    title = "transitive nondeterminism"
    severity = Severity.ERROR

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        result = propagate_taint(graph)
        for summary, fn in graph.functions():
            if not self.applies_to_summary(summary) or summary.sanctioned:
                continue
            trace = result.trace((summary.module, fn.qualname))
            if trace is None or trace.is_direct:
                # Direct sources are the per-file rules' (or the
                # @nondeterministic marker's) responsibility.
                continue
            reason = trace.reasons[0]
            source_module, source_qualname = trace.source
            yield Finding(
                rule_id=self.rule_id,
                path=summary.path,
                line=fn.line,
                column=fn.column,
                message=(
                    f"'{fn.qualname}' is transitively nondeterministic: "
                    f"{_chain_str(trace.chain)} "
                    f"({reason.kind}: {reason.detail} in "
                    f"{source_module}.{source_qualname});"
                    " inject a SeededRng/SimulationClock or mark the chain"
                    " @nondeterministic"
                ),
                severity=self.severity,
                source=fn.source,
            )


@register
class CorrelatedStreamsRule(ProjectRule):
    """REP041: two consumers share one random stream."""

    rule_id = "REP041"
    title = "correlated rng streams"
    severity = Severity.ERROR

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        # Duplicate fork labels across the whole project: fork(label) is
        # a pure function of (seed, label), so two sites forking the
        # same parent with the same label get byte-identical streams.
        by_label: Dict[str, List[Tuple[str, ForkLabel]]] = {}
        for summary in sorted(graph.summaries, key=lambda s: s.path):
            if not self.applies_to_summary(summary):
                continue
            for fork in summary.fork_labels:
                by_label.setdefault(fork.label, []).append(
                    (summary.path, fork)
                )
        for label in sorted(by_label):
            sites = by_label[label]
            distinct = {(path, fork.qualname) for path, fork in sites}
            if len(distinct) < 2:
                continue
            site_list = ", ".join(
                sorted(f"{path}:{fork.line}" for path, fork in sites)
            )
            for path, fork in sites:
                yield Finding(
                    rule_id=self.rule_id,
                    path=path,
                    line=fork.line,
                    column=fork.column,
                    message=(
                        f"fork label '{label}' is reused across sites"
                        f" ({site_list}); identical labels on the same"
                        " parent correlate streams that should be"
                        " independent"
                    ),
                    severity=self.severity,
                    source=fork.source,
                )
        # One un-forked stream passed onward more than once from the
        # same function: downstream consumers interleave draws from a
        # single sequence, so adding a draw in one silently reshuffles
        # the other.
        for summary, fn in graph.functions():
            if not self.applies_to_summary(summary) or summary.sanctioned:
                continue
            by_stream: Dict[str, List[int]] = {}
            for identifier, line in fn.rng_args:
                by_stream.setdefault(identifier, []).append(line)
            for identifier in sorted(by_stream):
                lines = by_stream[identifier]
                if len(set(lines)) < 2:
                    continue
                where = ", ".join(str(line) for line in sorted(set(lines)))
                yield Finding(
                    rule_id=self.rule_id,
                    path=summary.path,
                    line=fn.line,
                    column=fn.column,
                    message=(
                        f"'{fn.qualname}' passes the un-forked stream"
                        f" '{identifier}' to multiple consumers (lines"
                        f" {where}); fork() a labelled child per consumer"
                    ),
                    severity=self.severity,
                    source=fn.source,
                )


@register
class ShadowedInjectionRule(ProjectRule):
    """REP042: injected dependency silently replaced by a fallback."""

    rule_id = "REP042"
    title = "injected dependency shadowed by fallback"
    severity = Severity.WARNING

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        for summary in sorted(graph.summaries, key=lambda s: s.path):
            if not self.applies_to_summary(summary) or summary.sanctioned:
                continue
            for site in summary.shadows:
                yield Finding(
                    rule_id=self.rule_id,
                    path=summary.path,
                    line=site.line,
                    column=site.column,
                    message=(
                        f"'{site.qualname}' substitutes injected"
                        f" '{site.param}' with a local fallback; callers"
                        " that omit it silently leave the composition"
                        " root's seed plan"
                    ),
                    severity=self.severity,
                    source=site.source,
                )


@register
class DeadExportRule(ProjectRule):
    """REP043: ``__all__`` exports a name nothing references."""

    rule_id = "REP043"
    title = "dead public export"
    severity = Severity.WARNING

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        for summary in sorted(graph.summaries, key=lambda s: s.path):
            if not self.applies_to_summary(summary):
                continue
            if not summary.exports:
                continue
            if summary.module in graph.star_imported_modules:
                # ``from <module> import *`` in a reference root binds
                # every __all__ name without mentioning any of them —
                # the whole export list is live.
                continue
            for export in summary.exports:
                if export.name in graph.external_references:
                    continue
                # "Referenced anywhere in src" includes the defining
                # module itself: a def/class statement and the __all__
                # string are not Load-context names, so a symbol that is
                # also *used* at home stays alive, while one that is
                # merely defined and exported does not.
                if any(
                    export.name in other.referenced
                    for other in graph.summaries
                ):
                    continue
                yield Finding(
                    rule_id=self.rule_id,
                    path=summary.path,
                    line=export.line,
                    column=export.column,
                    message=(
                        f"'{export.name}' is exported in __all__ but"
                        " referenced nowhere in src, tests, examples, or"
                        " benchmarks; drop the export or the symbol"
                    ),
                    severity=self.severity,
                    source=export.source,
                )
