"""Named traffic profiles for the background-load plane.

A :class:`TrafficProfile` is a reproducible recipe, the traffic-plane
analogue of :class:`repro.faults.profiles.FaultProfile`: given a built
world it constructs a :class:`~repro.traffic.plane.TrafficPlane` whose
randomness is forked from the world's root RNG, so installing a plane
never perturbs world dynamics.  ``build`` is called at install time —
after warm-up, right before measurement starts.

Calibration is by *target utilisation* rather than absolute nameserver
capacity: the plane derives each nameserver's daily capacity from the
profile's expected volume and target, so a profile keeps its intended
load tier no matter how many nameserver identities the provider catalog
deploys.

``steady`` is an *equivalence* profile: its utilisation stays strictly
below the adaptive limiter's high watermark and no breaker can trip, so
the measurement plane is never throttled and a study under it produces
artifacts byte-identical to a traffic-free run.  ``surge`` and ``flood``
deliberately push past the watermarks to exercise graceful degradation
(UNMEASURED observations, partial scans — never fabricated transitions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import ConfigurationError
from ..net.geo import PAPER_VANTAGE_REGIONS
from ..obs.metrics import MetricsRegistry
from .plane import TrafficPlane

__all__ = [
    "TrafficProfile",
    "TRAFFIC_PROFILES",
    "traffic_profile",
    "normalize_traffic_profile",
]

_PAPER_REGIONS = tuple(PAPER_VANTAGE_REGIONS)


@dataclass(frozen=True)
class TrafficProfile:
    """A named, reproducible background-load recipe."""

    name: str
    description: str
    #: Whether a study under this profile must equal a traffic-free run.
    expect_equivalence: bool
    #: Mean background queries per region per simulated day.
    base_daily_queries: int
    #: Expected fleet utilisation on an average day; per-nameserver
    #: capacity is derived from this at build time.
    target_utilization: float
    regions: Tuple[str, ...] = _PAPER_REGIONS
    #: Modelled head clients per region (the Zipf head); the remaining
    #: volume is a long tail of small clients below every limit.
    clients_per_region: int = 48
    zipf_exponent: float = 1.1
    head_fraction: float = 0.6
    #: Per-head-client token-bucket allowance and burst cap.
    client_rate_per_day: int = 60_000
    client_burst_capacity: int = 90_000
    #: Periodic volume surges (post-attack query waves); 0 disables.
    surge_period_days: int = 0
    surge_multiplier: float = 1.0
    breaker_failure_threshold: int = 3
    breaker_base_backoff_days: int = 2
    breaker_jitter_fraction: float = 0.5
    breaker_max_backoff_days: int = 14
    high_watermark: float = 0.7
    critical_watermark: float = 0.9
    #: Retry-after charged to a throttled caller's retry budget.
    retry_after_ms: int = 250

    def surge_factor(self, day: int) -> float:
        """The volume multiplier for one simulated day."""
        if self.surge_period_days > 0 and day % self.surge_period_days == 0:
            return self.surge_multiplier
        return 1.0

    def build(
        self, world: object, metrics: Optional[MetricsRegistry] = None
    ) -> TrafficPlane:
        """Materialise the plane against a built world, at install time."""
        fleets = {}
        for provider_name in sorted(world.providers):
            provider = world.providers[provider_name]
            addresses = list(provider.infra_fleet.all_addresses())
            if provider.customer_fleet is not None:
                addresses.extend(provider.customer_fleet.all_addresses())
            fleets[provider_name] = addresses
        return TrafficPlane(
            profile=self,
            clock=world.clock,
            rng=world.rng.fork(f"traffic-plane-{self.name}"),
            fleets=fleets,
            metrics=metrics if metrics is not None else MetricsRegistry(),
        )


TRAFFIC_PROFILES: Dict[str, TrafficProfile] = {
    p.name: p
    for p in [
        TrafficProfile(
            "steady",
            "~3M queries/day of steady background load, utilisation well "
            "under the high watermark (equivalence guaranteed)",
            expect_equivalence=True,
            base_daily_queries=600_000,
            target_utilization=0.4,
        ),
        TrafficProfile(
            "surge",
            "weekly post-attack query surges push the fleet into the "
            "critical tier for a day at a time; breakers hold unless "
            "overload sustains",
            expect_equivalence=False,
            base_daily_queries=900_000,
            target_utilization=0.6,
            client_rate_per_day=90_000,
            client_burst_capacity=135_000,
            surge_period_days=7,
            surge_multiplier=3.0,
            breaker_failure_threshold=2,
        ),
        TrafficProfile(
            "flood",
            "sustained amplification-driven overload: critical tier, "
            "broad load shedding, breakers open for days",
            expect_equivalence=False,
            base_daily_queries=1_500_000,
            target_utilization=1.1,
            client_rate_per_day=150_000,
            client_burst_capacity=225_000,
        ),
    ]
}


def traffic_profile(name: str) -> TrafficProfile:
    """Look up a profile by name."""
    try:
        return TRAFFIC_PROFILES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown traffic profile {name!r}; "
            f"known: {', '.join(sorted(TRAFFIC_PROFILES))} (or 'none')"
        ) from None


def normalize_traffic_profile(name: Optional[str]) -> Optional[str]:
    """Map CLI/manifest spellings to a canonical profile name or None.

    ``None`` and ``"none"`` both mean *no background traffic*; anything
    else must name a registered profile.
    """
    if name is None or name == "none":
        return None
    return traffic_profile(name).name
