"""Provider-side defense primitives for the background-traffic plane.

Three small, independently testable mechanisms that real DNS operators
stack in front of authoritative fleets:

* :class:`TokenBucket` — per-client rate limiting at day granularity.
  Integer arithmetic throughout, so bucket levels are exact and replay
  byte-identically across processes and shard counts.
* :class:`AdaptiveLimiter` — fleet-wide load tiers (``normal`` /
  ``high`` / ``critical``).  Under load the per-client refill rate is
  cut 50% / 75%, and the measurement plane's queries are shed with the
  matching probability.
* :class:`CircuitBreaker` — per-nameserver overload breaker with the
  classic closed → open → half-open cycle.  Backoff grows exponentially
  per trip with *seeded* jitter derived from :func:`~repro.rng.stable_hash`
  (never a drawing RNG stream), so breaker timing is a pure function of
  (name, trip count) and needs no stream state in a checkpoint.

All three expose ``state_dict`` / ``restore_state`` and are listed in
:data:`repro.checkpoint.serde.SERDE_REGISTRY`; the
:class:`~repro.traffic.plane.TrafficPlane` carries them across
checkpoint barriers byte-identically.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from ..errors import ConfigurationError
from ..markers import pure_function
from ..rng import stable_hash

__all__ = [
    "TokenBucket",
    "AdaptiveLimiter",
    "CircuitBreaker",
    "TIERS",
    "breaker_backoff_days",
]

#: Load tiers, mildest first.
TIERS: Tuple[str, str, str] = ("normal", "high", "critical")

#: Per-client refill multiplier per tier — limits cut 50% / 75% under load.
_TIER_RATE_MULTIPLIERS: Mapping[str, float] = {
    "normal": 1.0,
    "high": 0.5,
    "critical": 0.25,
}

#: Probability a measurement-plane query is throttled per tier.
_TIER_THROTTLE_PROBABILITIES: Mapping[str, float] = {
    "normal": 0.0,
    "high": 0.5,
    "critical": 0.75,
}


@pure_function
def breaker_backoff_days(
    name: str,
    trips: int,
    base_backoff_days: int,
    jitter_fraction: float,
    max_backoff_days: int,
) -> int:
    """Clamped, jittered exponential backoff for trip number ``trips``.

    Every input arrives as a parameter and the jitter comes from
    :func:`~repro.rng.stable_hash`, so two shards that observe the same
    trip history compute the same open window — the contract the
    checkpoint/resume path relies on when it replays breaker state.
    """
    exponent = min(trips - 1, 6)
    backoff = base_backoff_days * (2 ** exponent)
    jitter = stable_hash("breaker-jitter", name, trips) % 10_000
    backoff = int(backoff * (1.0 + jitter_fraction * jitter / 10_000.0))
    return min(max(1, backoff), max_backoff_days)


class TokenBucket:
    """A per-client query budget refilled once per simulated day.

    ``capacity`` bounds burst carry-over; ``rate_per_day`` is the
    steady-state allowance, scaled down by the adaptive limiter's tier
    multiplier on each refill.  Everything is integer, so levels are
    exact under replay.
    """

    __slots__ = ("capacity", "rate_per_day", "level")

    def __init__(
        self,
        capacity: int,
        rate_per_day: int,
        level: Optional[int] = None,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(f"bucket capacity must be >= 1: {capacity}")
        if rate_per_day < 1:
            raise ConfigurationError(
                f"bucket rate_per_day must be >= 1: {rate_per_day}"
            )
        self.capacity = capacity
        self.rate_per_day = rate_per_day
        self.level = capacity if level is None else int(level)
        if not 0 <= self.level <= capacity:
            raise ConfigurationError(
                f"bucket level out of range [0, {capacity}]: {self.level}"
            )

    def refill(self, rate_multiplier: float = 1.0) -> None:
        """Start-of-day refill; the tier multiplier cuts the rate under load."""
        grant = int(self.rate_per_day * rate_multiplier)
        self.level = min(self.capacity, self.level + grant)

    def consume(self, demand: int) -> int:
        """Admit up to ``demand`` queries; returns how many got through."""
        if demand < 0:
            raise ConfigurationError(f"negative demand: {demand}")
        admitted = demand if demand <= self.level else self.level
        self.level -= admitted
        return admitted

    # -- checkpoint support -------------------------------------------

    def state_dict(self) -> Dict[str, int]:
        """Mutable state only; capacity/rate are profile configuration."""
        return {"level": self.level}

    def restore_state(self, state: Dict[str, int]) -> None:
        """Reinstate a level captured by :meth:`state_dict`."""
        self.level = int(state["level"])


class AdaptiveLimiter:
    """Fleet-wide load tier derived from daily capacity utilisation.

    ``update`` maps the day's utilisation onto ``normal`` / ``high`` /
    ``critical``; the tier then scales every client bucket's refill and
    sets the probability that measurement queries are throttled.
    """

    __slots__ = ("high_watermark", "critical_watermark", "tier")

    def __init__(
        self,
        high_watermark: float = 0.7,
        critical_watermark: float = 0.9,
        tier: str = "normal",
    ) -> None:
        if not 0.0 < high_watermark < critical_watermark:
            raise ConfigurationError(
                f"watermarks must satisfy 0 < high < critical: "
                f"{high_watermark}, {critical_watermark}"
            )
        if tier not in TIERS:
            raise ConfigurationError(f"unknown load tier: {tier!r}")
        self.high_watermark = high_watermark
        self.critical_watermark = critical_watermark
        self.tier = tier

    def update(self, utilization: float) -> str:
        """Re-derive the tier from one day's offered-load utilisation."""
        if utilization >= self.critical_watermark:
            self.tier = "critical"
        elif utilization >= self.high_watermark:
            self.tier = "high"
        else:
            self.tier = "normal"
        return self.tier

    @property
    def rate_multiplier(self) -> float:
        """Per-client refill multiplier for the current tier."""
        return _TIER_RATE_MULTIPLIERS[self.tier]

    @property
    def throttle_probability(self) -> float:
        """Probability one measurement query is shed at the current tier."""
        return _TIER_THROTTLE_PROBABILITIES[self.tier]

    # -- checkpoint support -------------------------------------------

    def state_dict(self) -> Dict[str, str]:
        """Mutable state only; watermarks are profile configuration."""
        return {"tier": self.tier}

    def restore_state(self, state: Dict[str, str]) -> None:
        """Reinstate a tier captured by :meth:`state_dict`."""
        tier = str(state["tier"])
        if tier not in TIERS:
            raise ConfigurationError(f"unknown load tier: {tier!r}")
        self.tier = tier


class CircuitBreaker:
    """A per-nameserver overload breaker at day granularity.

    State machine: ``closed`` counts consecutive overloaded days and
    trips to ``open`` at the failure threshold; an open breaker sheds
    every query until its backoff window elapses, then goes
    ``half-open``; the next day's load either closes it again or
    re-trips it with a doubled backoff.

    Backoff jitter is derived from :func:`~repro.rng.stable_hash` of
    (name, trip count) — a pure function, not an RNG stream — so two
    replicas of the same world compute identical open windows without
    sharing any stream position (the thundering-herd jitter stays
    seeded-deterministic).

    The delivery path reads :meth:`is_open` only; every state transition
    happens in :meth:`record_day`, which the traffic plane calls once
    per simulated day.  Admission is therefore a pure read — order-free
    within a day, as the shard lockstep requires.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    __slots__ = (
        "name",
        "failure_threshold",
        "base_backoff_days",
        "jitter_fraction",
        "max_backoff_days",
        "state",
        "failures",
        "trips",
        "open_until",
    )

    def __init__(
        self,
        name: str,
        failure_threshold: int = 3,
        base_backoff_days: int = 2,
        jitter_fraction: float = 0.5,
        max_backoff_days: int = 14,
    ) -> None:
        if failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1: {failure_threshold}"
            )
        if base_backoff_days < 1:
            raise ConfigurationError(
                f"base_backoff_days must be >= 1: {base_backoff_days}"
            )
        if not 0.0 <= jitter_fraction <= 1.0:
            raise ConfigurationError(
                f"jitter_fraction out of [0, 1]: {jitter_fraction}"
            )
        self.name = name
        self.failure_threshold = failure_threshold
        self.base_backoff_days = base_backoff_days
        self.jitter_fraction = jitter_fraction
        self.max_backoff_days = max_backoff_days
        self.state = self.CLOSED
        self.failures = 0
        self.trips = 0
        self.open_until = 0

    def is_open(self, day: int) -> bool:
        """Whether queries are shed on ``day``.  Pure read, never mutates."""
        return self.state == self.OPEN and day < self.open_until

    def record_day(self, day: int, overloaded: bool) -> None:
        """Advance the state machine with one day's overload verdict."""
        if self.state == self.OPEN and day >= self.open_until:
            self.state = self.HALF_OPEN
        if self.state == self.CLOSED:
            if overloaded:
                self.failures += 1
                if self.failures >= self.failure_threshold:
                    self._trip(day)
            else:
                self.failures = 0
        elif self.state == self.HALF_OPEN:
            if overloaded:
                self._trip(day)
            else:
                self.state = self.CLOSED
                self.failures = 0

    def _trip(self, day: int) -> None:
        self.trips += 1
        backoff = breaker_backoff_days(
            self.name,
            self.trips,
            self.base_backoff_days,
            self.jitter_fraction,
            self.max_backoff_days,
        )
        self.state = self.OPEN
        self.open_until = day + 1 + backoff
        self.failures = 0

    # -- checkpoint support -------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Mutable state only; thresholds are profile configuration."""
        return {
            "state": self.state,
            "failures": self.failures,
            "trips": self.trips,
            "open_until": self.open_until,
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Reinstate a position captured by :meth:`state_dict`."""
        kind = str(state["state"])
        if kind not in (self.CLOSED, self.OPEN, self.HALF_OPEN):
            raise ConfigurationError(f"unknown breaker state: {kind!r}")
        self.state = kind
        self.failures = int(state["failures"])
        self.trips = int(state["trips"])
        self.open_until = int(state["open_until"])
