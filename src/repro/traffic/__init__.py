"""Background traffic plane: client load models and provider defenses.

The measurement study used to be the only DNS traffic in the simulated
world.  This package adds everything else: Zipf-distributed client
query load from per-region resolver populations
(:class:`~repro.traffic.plane.TrafficPlane`), and the provider-side
defense stack that load provokes — per-client token buckets, adaptive
limit tiers, per-nameserver circuit breakers and load shedding
(:mod:`repro.traffic.defense`).  Named recipes live in
:mod:`repro.traffic.profiles`; install one with
:meth:`repro.world.internet.SimulatedInternet.install_traffic`.
"""

from .defense import AdaptiveLimiter, CircuitBreaker, TokenBucket
from .plane import TrafficPlane, TrafficVerdict
from .profiles import (
    TRAFFIC_PROFILES,
    TrafficProfile,
    normalize_traffic_profile,
    traffic_profile,
)

__all__ = [
    "AdaptiveLimiter",
    "CircuitBreaker",
    "TokenBucket",
    "TrafficPlane",
    "TrafficVerdict",
    "TrafficProfile",
    "TRAFFIC_PROFILES",
    "traffic_profile",
    "normalize_traffic_profile",
]
