"""The background-load plane: client populations vs. provider defenses.

A :class:`TrafficPlane` models everything the measurement study is *not*
sending: millions of daily DNS queries from per-region resolver
populations against the providers' nameserver fleets.  The model runs at
day granularity off the :class:`~repro.clock.SimulationClock` — once per
simulated day :meth:`drive_day` plays out the whole region-by-region
load pattern, feeds the provider defense stack
(:mod:`repro.traffic.defense`), and accumulates integer tallies.

Two sides, two consistency rules
--------------------------------
The plane straddles the shard boundary, so its state is split:

* **World side** (``drive_day``): buckets, breakers, the load tier and
  the ``tallies`` dict.  Driven from the world engine's day step, which
  every shard worker replays identically — so this state is *replicated*,
  never partitioned.  Shard merging checks it for byte agreement
  (:func:`repro.shard.merge.merge_payloads`); summing it would multiply
  the background load by the shard count.
* **Measurement side** (``admit_dns``): defense verdicts against the
  study's own deliveries.  The verdict is a *pure function* of
  (day, address, qname, region) hashed against the current tier's
  throttle probability — no mutable counters on the admission path, so
  verdicts are independent of delivery order and identical across shard
  counts (the REP06x order-free requirement).  Only the
  :class:`~repro.obs.metrics.MetricsRegistry` counters record what was
  shed, and those merge by commutative sum like every other counter.

The deterministic per-(day, …) verdict also gives throttling its
*retry-after* semantics: retrying the same query against the same server
on the same day is futile by construction, so clients fail over to
another server or vantage instead of burning their retry budget.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, TYPE_CHECKING, Tuple

from ..clock import SimulationClock
from ..dns.message import DnsQuery, DnsResponse
from ..errors import CheckpointCorruptError, ConfigurationError
from ..markers import pure_function
from ..net.geo import Region
from ..net.ipaddr import IPv4Address
from ..net.traffic import zipf_weights
from ..obs.metrics import MetricsRegistry, defense_counter
from ..rng import SeededRng, stable_hash
from .defense import AdaptiveLimiter, CircuitBreaker, TokenBucket

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .profiles import TrafficProfile

__all__ = ["TrafficVerdict", "TrafficPlane"]


class TrafficVerdict(NamedTuple):
    """What the defense stack decided for one measurement delivery.

    ``outcome`` is ``"throttled"`` (rate-limit drop, the client sees a
    timeout) or ``"shed"`` (breaker open / load shedding, the client
    sees a synthetic REFUSED).  ``latency_ms`` is the retry-after cost
    charged to the caller's retry budget.
    """

    outcome: str
    response: Optional[DnsResponse] = None
    latency_ms: int = 0


class TrafficPlane:
    """Deterministic background load plus the provider defense stack."""

    def __init__(
        self,
        profile: "TrafficProfile",
        clock: SimulationClock,
        rng: SeededRng,
        fleets: Dict[str, List[IPv4Address]],
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if not fleets or all(not addresses for addresses in fleets.values()):
            raise ConfigurationError(
                "a traffic plane needs at least one provider nameserver"
            )
        self.profile = profile
        self.name = profile.name
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._clock = clock
        self._rng = rng
        #: Provider fleets in sorted provider order (drive iteration order).
        self._fleets: List[Tuple[str, List[IPv4Address]]] = [
            (provider, list(fleets[provider])) for provider in sorted(fleets)
        ]
        self._provider_of: Dict[IPv4Address, str] = {
            address: provider
            for provider, addresses in self._fleets
            for address in addresses
        }
        self._total_addresses = len(self._provider_of)
        #: Per-nameserver daily capacity, derived from the profile's
        #: target utilisation so profiles keep their intended load tier
        #: regardless of how many nameservers the catalog deploys.
        expected_daily = profile.base_daily_queries * len(profile.regions)
        self.ns_capacity_per_day = max(
            1,
            int(
                expected_daily
                / self._total_addresses
                / profile.target_utilization
            ),
        )

        self._zipf_shares = zipf_weights(
            profile.clients_per_region, profile.zipf_exponent
        )
        self._buckets: Dict[Tuple[str, int], TokenBucket] = {
            (region, index): TokenBucket(
                capacity=profile.client_burst_capacity,
                rate_per_day=profile.client_rate_per_day,
            )
            for region in profile.regions
            for index in range(profile.clients_per_region)
        }
        self._breakers: Dict[str, CircuitBreaker] = {
            str(address): CircuitBreaker(
                str(address),
                failure_threshold=profile.breaker_failure_threshold,
                base_backoff_days=profile.breaker_base_backoff_days,
                jitter_fraction=profile.breaker_jitter_fraction,
                max_backoff_days=profile.breaker_max_backoff_days,
            )
            for address in self._provider_of
        }
        self._limiter = AdaptiveLimiter(
            high_watermark=profile.high_watermark,
            critical_watermark=profile.critical_watermark,
        )
        #: World-side integer tallies (offered/admitted/throttled per
        #: region, served/shed per provider, tier-day and breaker counts).
        self.tallies: Dict[str, int] = {}

    @property
    def tier(self) -> str:
        """The current fleet-wide load tier."""
        return self._limiter.tier

    def monitored_addresses(self) -> List[IPv4Address]:
        """Every nameserver address the defense stack fronts."""
        return sorted(self._provider_of)

    # -- world side: the daily background load -------------------------

    def drive_day(self, attack_surge: float = 1.0) -> None:
        """Play out one simulated day of background load.

        Called from the world engine's day step, so every replica of the
        world (shard workers, checkpoint replays) drives the identical
        sequence.  Randomness forks per (day, region) label off the
        plane's base stream — position-independent, so a resumed process
        regenerates the same draws without serialising stream state.

        ``attack_surge`` couples the attack plane in: active floods
        multiply the day's offered volume (post-attack query waves).
        The default of 1.0 is an exact float identity, so an
        attack-free world computes byte-identical volumes.
        """
        day = self._clock.day
        self._bump("days")
        self._bump(f"tier_days.{self._limiter.tier}")
        rate_multiplier = self._limiter.rate_multiplier
        admitted_total = 0
        for region in self.profile.regions:
            rng = self._rng.fork(f"traffic-day-{day}-{region}")
            surge = self.profile.surge_factor(day)
            volume = int(
                self.profile.base_daily_queries
                * surge
                * attack_surge
                * (0.8 + 0.4 * rng.random())
            )
            head_volume = int(volume * self.profile.head_fraction)
            admitted = volume - head_volume  # the long tail, under limits
            throttled = 0
            for index, share in enumerate(self._zipf_shares):
                demand = int(head_volume * share)
                bucket = self._buckets[(region, index)]
                bucket.refill(rate_multiplier)
                got = bucket.consume(demand)
                admitted += got
                throttled += demand - got
            admitted_total += admitted
            self._bump(f"offered.{region}", volume)
            self._bump(f"admitted.{region}", admitted)
            self._bump(f"throttled.{region}", throttled)

        # Spread the admitted load across the fleets with per-(day,
        # address) hash skew; per-nameserver overloads feed the breakers.
        per_address = admitted_total / self._total_addresses
        for provider, addresses in self._fleets:
            served = shed = 0
            for address in addresses:
                key = str(address)
                skew = 0.5 + (stable_hash("ns-load", day, key) % 1_000) / 1_000.0
                load = int(per_address * skew)
                overloaded = load > self.ns_capacity_per_day
                breaker = self._breakers[key]
                trips_before = breaker.trips
                breaker.record_day(day, overloaded)
                if breaker.trips > trips_before:
                    self._bump(f"breaker_trips.{provider}")
                if breaker.is_open(day):
                    self._bump(f"breaker_open_days.{provider}")
                    shed += load
                else:
                    served += load
                if overloaded:
                    self._bump(f"overload_days.{provider}")
            self._bump(f"served.{provider}", served)
            self._bump(f"shed.{provider}", shed)

        utilization = admitted_total / (
            self.ns_capacity_per_day * self._total_addresses
        )
        self._limiter.update(utilization)

    def _bump(self, key: str, amount: int = 1) -> None:
        if amount:
            self.tallies[key] = self.tallies.get(key, 0) + amount

    # -- measurement side: fabric admission ----------------------------

    @pure_function
    def admit_dns(
        self,
        address: IPv4Address,
        query: DnsQuery,
        region: Optional[Region],
    ) -> Optional[TrafficVerdict]:
        """Defense verdict for one measurement delivery, or None to admit.

        Order-free by construction: the throttle decision hashes
        (day, address, qname, region) against the tier's probability and
        the breaker check is a pure read.  Nothing on this path mutates
        plane state, so verdicts are identical no matter how deliveries
        interleave across shard workers — and a same-day retry of the
        same query is deterministically futile (retry-after semantics).
        """
        provider = self._provider_of.get(address)
        if provider is None:
            return None
        day = self._clock.day
        tier = self._limiter.tier
        if self._breakers[str(address)].is_open(day):
            self.metrics.incr(defense_counter(provider, tier, "shed"))
            self.metrics.incr(defense_counter(provider, tier, "refused"))
            return TrafficVerdict(
                "shed",
                DnsResponse.refused(query),
                self.profile.retry_after_ms,
            )
        probability = self._limiter.throttle_probability
        if probability > 0.0:
            region_name = region.name if region is not None else ""
            draw = stable_hash(
                "traffic-admit", day, str(address), str(query.qname), region_name
            ) % 10_000
            if draw < int(probability * 10_000):
                self.metrics.incr(defense_counter(provider, tier, "throttled"))
                return TrafficVerdict(
                    "throttled", None, self.profile.retry_after_ms
                )
        return None

    # -- checkpoint / shard support ------------------------------------

    def drive_state(self) -> Dict[str, object]:
        """The world-side state every shard replica must agree on.

        This is the shard payload's ``traffic`` entry: merged by byte
        agreement, never summed (the background load is replicated per
        worker, not partitioned).
        """
        return {
            "profile": self.name,
            "tier": self._limiter.tier,
            "buckets": sorted(
                [region, index, bucket.level]
                for (region, index), bucket in self._buckets.items()
            ),
            "breakers": sorted(
                [name, b.state, b.failures, b.trips, b.open_until]
                for name, b in self._breakers.items()
            ),
            "tallies": sorted(
                [key, value] for key, value in self.tallies.items()
            ),
        }

    def state_dict(self) -> Dict[str, object]:
        """Full mutable state as JSON primitives (checkpoint snapshots).

        The drive-side state plus the measurement-side defense counters.
        Configuration (fleets, capacities, zipf shares) is rebuilt from
        the profile at resume time, exactly like fault-plan rules.
        """
        state = self.drive_state()
        state["metrics"] = self.metrics.snapshot()
        return state

    def restore_state(self, state: Dict[str, object]) -> None:
        """Reinstate state captured by :meth:`state_dict`."""
        if state.get("profile") != self.name:
            raise CheckpointCorruptError(
                f"traffic snapshot was taken under profile "
                f"{state.get('profile')!r}, not {self.name!r}"
            )
        self._limiter.restore_state({"tier": state["tier"]})
        saved_buckets = {
            (str(region), int(index)): int(level)
            for region, index, level in state["buckets"]
        }
        if set(saved_buckets) != set(self._buckets):
            raise CheckpointCorruptError(
                "traffic snapshot's client buckets do not match the "
                "rebuilt plane's population"
            )
        for key, level in saved_buckets.items():
            self._buckets[key].restore_state({"level": level})
        saved_breakers = {
            str(name): (str(kind), int(failures), int(trips), int(open_until))
            for name, kind, failures, trips, open_until in state["breakers"]
        }
        if set(saved_breakers) != set(self._breakers):
            raise CheckpointCorruptError(
                "traffic snapshot's breakers do not match the rebuilt "
                "plane's nameserver fleet"
            )
        for name, (kind, failures, trips, open_until) in saved_breakers.items():
            self._breakers[name].restore_state(
                {
                    "state": kind,
                    "failures": failures,
                    "trips": trips,
                    "open_until": open_until,
                }
            )
        self.tallies = {
            str(key): int(value) for key, value in state["tallies"]
        }
        if "metrics" in state:
            self.metrics.restore(state["metrics"])
