"""Source-level markers read by the static analysis.

The whole-program determinism pass (:mod:`repro.analysis.graph`) seeds
its taint set from syntactic patterns — ambient ``random``/``time``/OS
entropy use.  Some nondeterminism hides behind abstractions the AST
cannot see (a C extension, an environment read, a deliberate wall-clock
report).  The :func:`nondeterministic` decorator declares such a
function explicitly: the taint pass treats it as a source, so every
caller that does not route around it shows up as a REP040 finding.

The decorator is a no-op at runtime — it exists purely as a durable,
greppable annotation that the analyzer and human reviewers share.
"""

from __future__ import annotations

from typing import Callable, TypeVar

F = TypeVar("F", bound=Callable)

__all__ = ["nondeterministic"]


def nondeterministic(func: F) -> F:
    """Declare ``func`` a nondeterminism source for the taint analysis.

    Apply to functions whose output legitimately depends on something
    outside the seeded world (wall clock, host entropy, environment).
    Callers inherit the taint transitively; sanctioned call chains are
    then suppressed inline or baselined, each with a written reason.
    """
    return func
