"""Source-level markers read by the static analysis.

The whole-program determinism pass (:mod:`repro.analysis.graph`) seeds
its taint set from syntactic patterns — ambient ``random``/``time``/OS
entropy use.  Some nondeterminism hides behind abstractions the AST
cannot see (a C extension, an environment read, a deliberate wall-clock
report).  The :func:`nondeterministic` decorator declares such a
function explicitly: the taint pass treats it as a source, so every
caller that does not route around it shows up as a REP040 finding.

The shard-safety decade (REP060–REP063) needs one more piece of
ground truth the AST cannot infer: where the planned multiprocess
shard boundary *is*.  :func:`shard_entry` declares a function the
per-shard unit of work (each worker process runs it independently);
:func:`merge_point` declares a function that combines per-shard
results back into one artifact.  The declarations are the checked-in
shard-boundary spec — the analyzer consults them to decide which
mutable state is shared across processes (REP060), which aggregation
order matters (REP061), and which RNG streams may not cross the
boundary (REP062).

The purity/effect decade (REP070–REP073) adds the last contract the
shard story rests on: verdict-style functions (traffic admission,
stable hashing, shard bounds, breaker backoff) must be pure functions
of their arguments, or byte-identical merges and order-free admission
silently stop holding.  :func:`pure_function` declares that boundary;
the effect-inference pass (:mod:`repro.analysis.effects`) then proves
it, flagging any inferred write, RNG draw, clock read, I/O, or
module-global read reachable from the declared function.

All decorators are no-ops at runtime — they exist purely as durable,
greppable annotations that the analyzer and human reviewers share.
"""

from __future__ import annotations

from typing import Callable, TypeVar

F = TypeVar("F", bound=Callable)

__all__ = ["merge_point", "nondeterministic", "pure_function", "shard_entry"]


def nondeterministic(func: F) -> F:
    """Declare ``func`` a nondeterminism source for the taint analysis.

    Apply to functions whose output legitimately depends on something
    outside the seeded world (wall clock, host entropy, environment).
    Callers inherit the taint transitively; sanctioned call chains are
    then suppressed inline or baselined, each with a written reason.
    """
    return func


def shard_entry(func: F) -> F:
    """Declare ``func`` a shard entry point for the REP06x analysis.

    A shard entry point is the unit of work the planned sharded runner
    hands to one worker process.  Everything reachable from it runs
    concurrently in several processes, so module/class-level mutable
    state it touches is a cross-process hazard (REP060) and any RNG
    stream it forks is owned by exactly this entry point (REP062).
    Entry points must not be nested — do not declare a function that is
    itself reachable from another declared entry point.
    """
    return func


def merge_point(func: F) -> F:
    """Declare ``func`` a merge point for the REP06x analysis.

    A merge point combines per-shard results into one artifact, so its
    output must not depend on shard arrival order: REP061 flags
    unsorted dict/set iteration and arrival-order folds inside it, and
    REP062 flags shard-owned RNG streams flowing into it.
    """
    return func


def pure_function(func: F) -> F:
    """Declare ``func`` a pure function for the REP07x effect analysis.

    A pure function's result may depend only on its arguments: no
    writes that outlive the call (parameters, ``self``, globals,
    captured closures), no RNG draws or clock reads, no I/O, and no
    reads of module-level mutable state that is not passed in.  The
    effect-inference pass verifies the declaration interprocedurally —
    REP070/REP071 flag direct and transitive effects, REP072 flags
    ambient state reads (the ``admit_dns`` regression class).  Apply it
    to every verdict-style function the shard merge or resume story
    relies on; constructing and returning fresh objects is fine.
    """
    return func
