"""Command-line interface.

::

    python -m repro study  [--population N] [--seed S] [--days D] [--warmup W]
                           [--shards N] [--shard-mode inline|process]
                           [--traffic PROFILE]
    python -m repro scan   [--population N] [--seed S]
    python -m repro attack [--population N] [--seed S] [--gbps G]
    python -m repro purge-probe [--trials T] [--plan PLAN]
    python -m repro bench  [--population N] [--seed S] [--warmup W]
                           [--label L] [--out PATH] [--shards N[,N...]]
                           [--traffic PROFILE]
    python -m repro traffic [--profile NAME] [--population N] [--seed S]
                           [--days D]
    python -m repro attacks [--profile NAME] [--population N] [--seed S]
                           [--days D]
    python -m repro chaos  --profile NAME [--population N] [--seed S]
                           [--warmup W] [--out PATH] [--traffic PROFILE]
                           [--attacks PROFILE]
    python -m repro resume CHECKPOINT_DIR [--population N] [--seed S]
                           [--days D] [--warmup W] [--profile NAME]
                           [--export PATH] [--shard-mode inline|process]
    python -m repro kill-matrix [--population N] [--seed S] [--days D]
                           [--warmup W] [--profile NAME] [--workdir DIR]
                           [--out PATH] [--shards N]
                           [--shard-mode inline|process]
    python -m repro lint   [paths] [--select IDS] [--ignore IDS]
                           [--format text|json|sarif] [--baseline PATH]
                           [--update-baseline] [--cache PATH] [--no-cache]
                           [--ignore-unused-suppressions] [--jobs N]

``study`` runs the full six-week campaign and prints every table and
figure; ``scan`` runs one §V residual-resolution sweep; ``attack``
demonstrates the Fig. 1 bypass; ``purge-probe`` reruns the §V-A-3
controlled purge measurement; ``bench`` runs the E1/E8 query-path
workloads and writes a ``BENCH_<label>.json`` trajectory point;
``chaos`` reruns them under a named fault profile against a same-seed
fault-free run, writes ``CHAOS_<profile>.json``, and exits nonzero if
an equivalence profile diverged (or a degradation profile failed to
degrade explicitly); ``study --checkpoint DIR`` commits a durable
checkpoint barrier after every study day; ``resume`` continues a
crashed checkpointed study on the exact deterministic trajectory
(mismatched inputs, corrupt snapshots, and damaged journals are
refused with a nonzero exit); ``kill-matrix`` crashes a checkpointed
study at every barrier in both crash modes, resumes each, and writes a
``KILLMATRIX.json`` divergence report (nonzero exit unless every
resumed run is byte-identical to the uninterrupted reference); ``lint``
runs the determinism and simulation-invariant static analysis (exit 0
clean, 1 findings, 2 usage error).

``study --shards N`` partitions the site population across ``N``
lockstep workers (forked processes by default, ``--shard-mode inline``
for in-process) and merges their measurements into a report
byte-identical to the monolithic run's; with ``--checkpoint`` each
worker keeps its own store under the campaign directory and ``resume``
detects the sharded layout from the coordinator manifest.
``kill-matrix --shards N`` runs the whole matrix through the sharded
plane, and ``bench --shards 1,2,4,8`` appends a worker-scaling curve
for the E1 collection to the BENCH payload.  docs/SCALING.md documents
the execution model.

``--traffic PROFILE`` (on ``study``, ``resume``, ``kill-matrix`` and
``bench``) installs a named background-load profile after warm-up: the
provider fleets serve Zipf-distributed client traffic and their defense
stack (token buckets, adaptive limit tiers, circuit breakers, load
shedding) may throttle the measurement plane, which degrades gracefully
(UNMEASURED observations and partial scans, never fabricated
transitions).  ``repro traffic`` lists the profiles or dry-drives one
and prints its tallies.  docs/ROBUSTNESS.md documents the semantics.

``--attacks PROFILE`` (on the same commands) schedules a deterministic
DDoS campaign after warm-up: volumetric and amplification events strike
site origins, provider fleets, and co-located hosting blocks, drive
emergency JOIN / post-attack LEAVE/SWITCH waves through the world's
behavior engine, surge the background-traffic load, and open transient
outage windows on the victims' nameservers and origins — the
measurement plane degrades gracefully while the study keeps running.
``repro attacks`` lists the profiles or dry-drives one and prints its
schedule and wave tallies.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .core.attacker import DdosSimulator, ResidualResolutionAttacker
from .core.collector import DnsRecordCollector
from .core.htmlverify import HtmlVerifier
from .core.matching import ProviderMatcher
from .core.pipeline import FilterPipeline
from .core.purge_probe import PurgeProbe
from .core.report import render_full_report
from .core.residual_scan import CloudflareScanner, NameserverHarvest
from .core.study import SixWeekStudy, StudyConfig
from .dps.plans import PlanTier
from .dps.portal import ReroutingMethod
from .io import atomic_write_json
from .net.geo import PAPER_VANTAGE_REGIONS
from .world import SimulatedInternet, WorldConfig

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Your Remnant Tells Secret' (DSN 2018)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_world_args(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--population", type=int, default=2000,
                         help="number of websites (default 2000)")
        sub.add_argument("--seed", type=int, default=2018,
                         help="world seed (default 2018)")

    study = subparsers.add_parser("study", help="run the full six-week campaign")
    add_world_args(study)
    study.add_argument("--days", type=int, default=42,
                       help="study length in days (default 42)")
    study.add_argument("--warmup", type=int, default=56,
                       help="warm-up days before the study (default 56)")
    study.add_argument("--export", metavar="PATH", default=None,
                       help="also write the report as JSON to PATH")
    study.add_argument("--checkpoint", metavar="DIR", default=None,
                       help="commit a durable checkpoint barrier after "
                            "every study day into DIR (resume with "
                            "'repro resume DIR')")
    study.add_argument("--fault-profile", metavar="NAME", default=None,
                       help="run the checkpointed study under a named "
                            "fault profile (requires --checkpoint)")
    study.add_argument("--traffic", metavar="PROFILE", default=None,
                       help="drive background load under a named traffic "
                            "profile ('none' disables; see 'repro traffic')")
    study.add_argument("--attacks", metavar="PROFILE", default=None,
                       help="schedule a named DDoS campaign after warm-up "
                            "('none' disables; see 'repro attacks')")
    study.add_argument("--shards", type=int, default=1, metavar="N",
                       help="partition the population across N lockstep "
                            "workers and merge byte-identically (default 1)")
    study.add_argument("--shard-mode", choices=["inline", "process"],
                       default="process",
                       help="how sharded workers execute: forked processes "
                            "or in-process objects (default process)")

    scan = subparsers.add_parser("scan", help="one residual-resolution sweep")
    add_world_args(scan)
    scan.add_argument("--warmup", type=int, default=45,
                      help="days of dynamics before the sweep (default 45)")

    attack = subparsers.add_parser("attack", help="demonstrate the Fig. 1 bypass")
    add_world_args(attack)
    attack.add_argument("--gbps", type=float, default=900.0,
                        help="attack volume in Gbps (default 900)")

    probe = subparsers.add_parser("purge-probe", help="the §V-A-3 purge probe")
    add_world_args(probe)
    probe.add_argument("--trials", type=int, default=3)
    probe.add_argument(
        "--plan", choices=[t.value for t in PlanTier], default="free"
    )

    bench = subparsers.add_parser(
        "bench",
        help="query-path benchmark: E1/E8 workloads -> BENCH_<label>.json",
    )
    add_world_args(bench)
    bench.add_argument("--warmup", type=int, default=7,
                       help="days of world dynamics before the workloads "
                            "(default 7)")
    bench.add_argument("--label", default=None,
                       help="trajectory label (default: p<population>)")
    bench.add_argument("--out", metavar="PATH", default=None,
                       help="output path (default: BENCH_<label>.json)")
    bench.add_argument("--traffic", metavar="PROFILE", default=None,
                       help="run the workloads under a named background-"
                            "traffic profile ('none' disables)")
    bench.add_argument("--attacks", metavar="PROFILE", default=None,
                       help="run the workloads under a named DDoS campaign "
                            "('none' disables)")
    bench.add_argument("--shards", metavar="N[,N...]", default=None,
                       help="also measure the sharded E1 collection at "
                            "these worker counts (e.g. 1,2,4,8) and record "
                            "the scaling curve in the payload")

    chaos = subparsers.add_parser(
        "chaos",
        help="E1/E8 under a fault profile, diffed against a fault-free run",
    )
    from .faults.profiles import PROFILES

    chaos.add_argument("--profile", required=True, choices=sorted(PROFILES),
                       help="named fault profile to inject")
    chaos.add_argument("--population", type=int, default=400,
                       help="number of websites (default 400)")
    chaos.add_argument("--seed", type=int, default=2018,
                       help="world seed (default 2018)")
    chaos.add_argument("--warmup", type=int, default=21,
                       help="days of world dynamics before the workloads "
                            "(default 21)")
    chaos.add_argument("--out", metavar="PATH", default=None,
                       help="output path (default: CHAOS_<profile>.json)")
    chaos.add_argument("--traffic", metavar="PROFILE", default=None,
                       help="run BOTH worlds under this background-traffic "
                            "profile, proving the fault check composes with "
                            "load ('none' disables)")
    chaos.add_argument("--attacks", metavar="PROFILE", default=None,
                       help="run BOTH worlds under this attack campaign, "
                            "proving the fault check composes with attacks "
                            "('none' disables)")

    resume = subparsers.add_parser(
        "resume", help="continue a crashed checkpointed study"
    )
    resume.add_argument("checkpoint", metavar="CHECKPOINT_DIR",
                        help="checkpoint directory written by "
                             "'repro study --checkpoint'")
    add_world_args(resume)
    resume.add_argument("--days", type=int, default=42,
                        help="study length in days (default 42)")
    resume.add_argument("--warmup", type=int, default=56,
                        help="warm-up days before the study (default 56)")
    resume.add_argument("--fault-profile", metavar="NAME", default=None,
                        help="fault profile the original run used, if any")
    resume.add_argument("--traffic", metavar="PROFILE", default=None,
                        help="traffic profile the original run used, if any")
    resume.add_argument("--attacks", metavar="PROFILE", default=None,
                        help="attack profile the original run used, if any")
    resume.add_argument("--export", metavar="PATH", default=None,
                        help="also write the report as JSON to PATH")
    resume.add_argument("--shard-mode", choices=["inline", "process"],
                        default="process",
                        help="worker execution mode when the checkpoint is "
                             "a sharded campaign (default process)")

    killmatrix = subparsers.add_parser(
        "kill-matrix",
        help="crash a checkpointed study at every barrier, resume, "
             "and demand byte-identical artifacts",
    )
    killmatrix.add_argument("--population", type=int, default=2000,
                            help="number of websites (default 2000)")
    killmatrix.add_argument("--seed", type=int, default=2018,
                            help="world seed (default 2018)")
    killmatrix.add_argument("--days", type=int, default=4,
                            help="study length in days (default 4)")
    killmatrix.add_argument("--warmup", type=int, default=10,
                            help="warm-up days before the study (default 10)")
    killmatrix.add_argument("--fault-profile", metavar="NAME", default=None,
                            help="also run the matrix under a fault profile")
    killmatrix.add_argument("--traffic", metavar="PROFILE", default=None,
                            help="also run the matrix under a background-"
                                 "traffic profile")
    killmatrix.add_argument("--attacks", metavar="PROFILE", default=None,
                            help="also run the matrix under a DDoS attack "
                                 "campaign")
    killmatrix.add_argument("--workdir", metavar="DIR", default=None,
                            help="where the matrix keeps its checkpoint "
                                 "directories (default: a fresh temp dir)")
    killmatrix.add_argument("--out", metavar="PATH", default="KILLMATRIX.json",
                            help="divergence report path "
                                 "(default: KILLMATRIX.json)")
    killmatrix.add_argument("--shards", type=int, default=1, metavar="N",
                            help="run the matrix through the sharded "
                                 "execution plane with N workers (default 1)")
    killmatrix.add_argument("--shard-mode", choices=["inline", "process"],
                            default="inline",
                            help="worker execution mode for sharded matrix "
                                 "runs (default inline)")

    traffic = subparsers.add_parser(
        "traffic",
        help="inspect background-traffic profiles (list, or dry-drive one)",
    )
    add_world_args(traffic)
    traffic.add_argument("--profile", metavar="NAME", default=None,
                         help="drive this profile against a built world and "
                              "print its tallies (default: list profiles)")
    traffic.add_argument("--days", type=int, default=7,
                         help="days of load to drive with --profile "
                              "(default 7)")

    attacks = subparsers.add_parser(
        "attacks",
        help="inspect attack profiles (list, or dry-drive one)",
    )
    add_world_args(attacks)
    attacks.add_argument("--profile", metavar="NAME", default=None,
                         help="drive this campaign against a built world "
                              "and print its schedule and wave tallies "
                              "(default: list profiles)")
    attacks.add_argument("--days", type=int, default=42,
                         help="days of dynamics to drive with --profile "
                              "(default 42)")

    lint = subparsers.add_parser(
        "lint", help="determinism & simulation-invariant static analysis"
    )
    lint.add_argument(
        "paths", nargs="*", default=None, metavar="PATH",
        help="files or directories to lint (default: the repro package)",
    )
    lint.add_argument(
        "--select", default=None, metavar="IDS",
        help="comma-separated rule IDs to run (default: all)",
    )
    lint.add_argument(
        "--ignore", default=None, metavar="IDS",
        help="comma-separated rule IDs to skip",
    )
    lint.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text",
        dest="output_format", help="report format (default: text)",
    )
    lint.add_argument(
        "--baseline", default="lint-baseline.txt", metavar="PATH",
        help="baseline (allowlist) file (default: lint-baseline.txt)",
    )
    lint.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to cover all current findings",
    )
    lint.add_argument(
        "--cache", default=".repro-lint-cache.json", metavar="PATH",
        help="incremental cache file (default: .repro-lint-cache.json)",
    )
    lint.add_argument(
        "--no-cache", action="store_true",
        help="disable the incremental cache for this run",
    )
    lint.add_argument(
        "--ignore-unused-suppressions", action="store_true",
        help="do not report inline suppressions that matched no finding",
    )
    lint.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for cold-start parsing (0 = one per CPU;"
             " default: 1, serial)",
    )
    return parser


def _default_lint_paths() -> List[str]:
    """Lint ``src/repro`` when run from a checkout, else the package."""
    if os.path.isdir(os.path.join("src", "repro")):
        return [os.path.join("src", "repro")]
    return [os.path.dirname(os.path.abspath(__file__))]


def _cmd_lint(args) -> int:
    from .analysis import (
        Analyzer,
        Baseline,
        render_json,
        render_sarif,
        render_text,
    )
    from .errors import AnalysisError

    def split_ids(raw: Optional[str]) -> Optional[List[str]]:
        if raw is None:
            return None
        ids = [part.strip() for part in raw.split(",") if part.strip()]
        if not ids:
            raise AnalysisError("empty rule-ID list for --select/--ignore")
        return ids

    try:
        analyzer = Analyzer(
            select=split_ids(args.select),
            ignore=split_ids(args.ignore),
            cache_path=None if args.no_cache else args.cache,
            ignore_unused_suppressions=args.ignore_unused_suppressions,
            jobs=args.jobs,
        )
        result = analyzer.analyze(args.paths or _default_lint_paths())
        baseline = Baseline.load(args.baseline)
        if args.update_baseline:
            updated = Baseline.from_findings(
                result.findings, previous=baseline
            )
            updated.save(args.baseline)
            dropped = sum(
                1
                for entry in baseline.entries()
                if entry.fingerprint not in updated
            )
            print(
                f"baseline updated: {len(result.findings)} entry(ies), "
                f"{dropped} stale entry(ies) dropped -> {args.baseline}"
            )
            return 0
        new, suppressed = baseline.split(result.findings)
    except AnalysisError as exc:
        print(f"repro lint: error: {exc}", file=sys.stderr)
        return 2
    renderer = {
        "json": render_json,
        "sarif": render_sarif,
    }.get(args.output_format, render_text)
    print(renderer(
        new,
        suppressed,
        baseline,
        inline_suppressed=result.inline_suppressed,
        stats=result.stats.to_dict(),
    ))
    return 1 if new else 0


def main(argv: Optional[List[str]] = None) -> int:  # repro: allow[REP040] -- reaches run_bench's sanctioned wall-clock reporting; simulation commands stay seeded
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "traffic":
        return _cmd_traffic(args)
    if args.command == "attacks":
        return _cmd_attacks(args)
    if getattr(args, "traffic", None) is not None:
        from .errors import ConfigurationError
        from .traffic import normalize_traffic_profile

        try:
            args.traffic = normalize_traffic_profile(args.traffic)
        except ConfigurationError as exc:
            print(f"repro {args.command}: {exc}", file=sys.stderr)
            return 2
    if getattr(args, "attacks", None) is not None:
        from .attacks import normalize_attack_profile
        from .errors import ConfigurationError

        try:
            args.attacks = normalize_attack_profile(args.attacks)
        except ConfigurationError as exc:
            print(f"repro {args.command}: {exc}", file=sys.stderr)
            return 2
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "resume":
        return _cmd_resume(args)
    if args.command == "kill-matrix":
        return _cmd_kill_matrix(args)
    if args.command == "study" and args.shards > 1:
        return _cmd_study_sharded(args)
    if args.command == "study" and args.checkpoint:
        return _cmd_study_checkpointed(args)
    world = SimulatedInternet(
        WorldConfig(population_size=args.population, seed=args.seed)
    )
    if args.command == "study":
        return _cmd_study(world, args)
    if args.command == "scan":
        return _cmd_scan(world, args)
    if args.command == "attack":
        return _cmd_attack(world, args)
    if args.command == "bench":
        return _cmd_bench(world, args)
    return _cmd_purge_probe(world, args)


def _cmd_chaos(args) -> int:
    from .faults.chaos import run_chaos

    report = run_chaos(
        args.profile,
        population=args.population,
        seed=args.seed,
        warmup_days=args.warmup,
        traffic=args.traffic,
        attacks=args.attacks,
    )
    out_path = args.out or f"CHAOS_{report['profile']}.json"
    atomic_write_json(out_path, report)
    retries = report["retries"]
    print(f"profile {report['profile']} "
          f"({'equivalence' if report['expect_equivalence'] else 'degradation'}): "
          f"{report['faults_injected']} faults injected, "
          f"retries resolver={retries['resolver']} client={retries['client']} "
          f"http={retries['http']}")
    if report["identical"]:
        print("artifacts identical to the fault-free run")
    else:
        print(f"{report['unmeasured_sites']} unmeasured site(s), "
              f"{len(report['quarantined_nameservers'])} quarantined "
              f"nameserver(s); divergences:")
        for divergence in report["divergences"][:10]:
            print(f"  {divergence}")
    print(f"chaos report written to {out_path}")
    if not report["passed"]:
        print("chaos check FAILED", file=sys.stderr)
        return 1
    return 0


def _parse_shard_counts(raw: str) -> List[int]:
    counts = []
    for part in raw.split(","):
        part = part.strip()
        if part:
            counts.append(int(part))
    if not counts or any(count < 1 for count in counts):
        raise ValueError(f"bad shard-count list {raw!r}")
    return counts


def _cmd_bench(world: SimulatedInternet, args) -> int:  # repro: allow[REP040] -- run_bench's wall-clock reads are the bench's output, not simulation state
    from .obs.bench import run_bench

    if args.shards is not None:
        try:
            shard_counts = _parse_shard_counts(args.shards)
        except ValueError:
            print(f"repro bench: --shards wants a comma-separated list of "
                  f"positive worker counts, got {args.shards!r}",
                  file=sys.stderr)
            return 2
    else:
        shard_counts = None
    result = run_bench(
        world,
        warmup_days=args.warmup,
        label=args.label,
        traffic=args.traffic,
        attacks=args.attacks,
    )
    if shard_counts:
        from .obs.bench import run_shard_scaling

        result["shard_scaling"] = run_shard_scaling(
            world, shard_counts=shard_counts
        )
    out_path = args.out or f"BENCH_{result['label']}.json"
    atomic_write_json(out_path, result)
    e1 = result["e1_collection"]
    e8 = result["e8_residual_scan"]
    comparison = e8["query_path_comparison"]
    print(f"E1 collection: {e1['resolved']}/{e1['hostnames']} resolved, "
          f"{e1['counters'].get('resolver.queries_sent', 0)} queries, "
          f"{e1['counters'].get('cache.hits', 0)} cache hits")
    print(f"E8 residual scan: {e8['harvested_nameservers']} nameservers, "
          f"cf retrieved={e8['cloudflare_retrieved']} "
          f"hidden={e8['cloudflare_hidden']}, "
          f"incap retrieved={e8['incapsula_retrieved']} "
          f"hidden={e8['incapsula_hidden']}")
    if comparison:
        batched = comparison["batched"]["queries_per_resolved"]
        naive = comparison["naive"]["queries_per_resolved"]
        print(f"query path: batched {batched:.2f} vs naive {naive:.2f} "
              f"queries/resolved name")
    traffic = result.get("traffic")
    if traffic:
        sheds = sum(
            count
            for name, count in traffic["defense_counters"].items()
            if name.endswith(".shed") or name.endswith(".throttled")
        )
        print(f"traffic [{traffic['profile']}]: tier={traffic['tier']}, "
              f"{sheds} measurement deliveries throttled/shed")
    scaling = result.get("shard_scaling")
    if scaling:
        print(f"shard scaling ({scaling['cpus']} cpu(s)):")
        for point in scaling["points"]:
            print(f"  {point['workers']} worker(s) [{point['mode']}]: "
                  f"{point['wall_seconds']:.3f}s, "
                  f"{point['resolved']} resolved, "
                  f"{point['queries_sent']} queries")
    print(f"bench written to {out_path}")
    return 0


def _cmd_study(world: SimulatedInternet, args) -> int:
    if args.fault_profile:
        print("repro study: --fault-profile requires --checkpoint",
              file=sys.stderr)
        return 2
    config = StudyConfig(warmup_days=args.warmup, study_days=args.days)
    study = SixWeekStudy(world, config)
    runtime = study.begin()
    if args.traffic is not None:
        # Post-warmup, exactly like the checkpointed plane's _begin:
        # background load shapes the measured weeks, not the warm-up.
        world.install_traffic(args.traffic)
    if args.attacks is not None:
        world.install_attacks(args.attacks)
    while not runtime.finished:
        study.run_day(runtime)
    report = study.finalise(runtime)
    return _print_study_report(report, args.export)


def _print_study_report(report, export: Optional[str]) -> int:
    print(render_full_report(report))
    if export:
        from .core.export import save_report

        path = save_report(report, export)
        print(f"\nreport exported to {path}")
    return 0


def _cmd_study_sharded(args) -> int:
    from .errors import CheckpointError, ShardError
    from .shard import run_sharded_study

    if args.fault_profile and not args.checkpoint:
        print("repro study: --fault-profile requires --checkpoint",
              file=sys.stderr)
        return 2
    config = StudyConfig(warmup_days=args.warmup, study_days=args.days)
    try:
        report = run_sharded_study(
            population=args.population,
            seed=args.seed,
            config=config,
            fault_profile=args.fault_profile,
            traffic_profile=args.traffic,
            attack_profile=args.attacks,
            shard_count=args.shards,
            mode=args.shard_mode,
            checkpoint_dir=args.checkpoint,
        )
    except (CheckpointError, ShardError) as exc:
        print(f"repro study: {exc}", file=sys.stderr)
        return 1
    return _print_study_report(report, args.export)


def _cmd_study_checkpointed(args) -> int:
    from .checkpoint import run_checkpointed_study
    from .errors import CheckpointError

    config = StudyConfig(warmup_days=args.warmup, study_days=args.days)
    try:
        report = run_checkpointed_study(
            args.checkpoint,
            population=args.population,
            seed=args.seed,
            config=config,
            fault_profile=args.fault_profile,
            traffic_profile=args.traffic,
            attack_profile=args.attacks,
        )
    except CheckpointError as exc:
        print(f"repro study: {exc}", file=sys.stderr)
        return 1
    return _print_study_report(report, args.export)


def _cmd_resume(args) -> int:
    from .checkpoint import resume_study
    from .checkpoint.store import CheckpointStore
    from .errors import CheckpointError, ShardError

    config = StudyConfig(warmup_days=args.warmup, study_days=args.days)
    try:
        # A sharded campaign's coordinator manifest records {"count": n}
        # (no "index"); anything else resumes through the monolithic
        # plane, including a worker's own shard-<i>-of-<n> store, which
        # the identity check then refuses.
        shard = CheckpointStore.open(args.checkpoint).manifest.get("shard")
        if isinstance(shard, dict) and "count" in shard and "index" not in shard:
            from .shard import resume_sharded_study

            report = resume_sharded_study(
                args.checkpoint,
                population=args.population,
                seed=args.seed,
                config=config,
                fault_profile=args.fault_profile,
                traffic_profile=args.traffic,
                attack_profile=args.attacks,
                mode=args.shard_mode,
            )
        else:
            report = resume_study(
                args.checkpoint,
                population=args.population,
                seed=args.seed,
                config=config,
                fault_profile=args.fault_profile,
                traffic_profile=args.traffic,
                attack_profile=args.attacks,
            )
    except (CheckpointError, ShardError) as exc:
        print(f"repro resume: {exc}", file=sys.stderr)
        return 1
    return _print_study_report(report, args.export)


def _cmd_kill_matrix(args) -> int:
    import tempfile

    from .checkpoint import run_kill_matrix

    config = StudyConfig(warmup_days=args.warmup, study_days=args.days)
    workdir = args.workdir or tempfile.mkdtemp(prefix="repro-killmatrix-")
    payload = run_kill_matrix(
        workdir,
        population=args.population,
        seed=args.seed,
        config=config,
        fault_profile=args.fault_profile,
        traffic_profile=args.traffic,
        attack_profile=args.attacks,
        shards=args.shards,
        shard_mode=args.shard_mode,
    )
    atomic_write_json(args.out, payload)
    failed = [c for c in payload["cases"] if not c["passed"]]
    print(f"kill matrix: {len(payload['cases'])} crash case(s), "
          f"{len(payload['refusals'])} refusal check(s), "
          f"{len(failed)} failure(s)")
    for case in failed:
        print(f"  {case['mode']} @ barrier {case['barrier']}: "
              f"{'; '.join(case['divergences'][:5]) or 'failed'}")
    for refusal in payload["refusals"]:
        verdict = "ok" if refusal["passed"] else "FAILED"
        print(f"  refusal {refusal['check']}: {verdict}")
    print(f"divergence report written to {args.out}")
    if not payload["passed"]:
        print("kill matrix FAILED", file=sys.stderr)
        return 1
    return 0


def _cmd_traffic(args) -> int:
    from .errors import ConfigurationError
    from .obs.metrics import MetricsRegistry
    from .traffic import TRAFFIC_PROFILES, normalize_traffic_profile

    if args.profile is None:
        print("background-traffic profiles:")
        for name in sorted(TRAFFIC_PROFILES):
            profile = TRAFFIC_PROFILES[name]
            kind = "equivalence" if profile.expect_equivalence else "degradation"
            surge = (f"surge x{profile.surge_multiplier:.1f} every "
                     f"{profile.surge_period_days} day(s)"
                     if profile.surge_period_days else "no surges")
            print(f"  {name:<8} ({kind}): "
                  f"{profile.base_daily_queries} queries/region/day, "
                  f"utilization {profile.target_utilization:.2f}, {surge}")
            print(f"           {profile.description}")
        print("('none' disables background traffic)")
        return 0
    try:
        name = normalize_traffic_profile(args.profile)
    except ConfigurationError as exc:
        print(f"repro traffic: {exc}", file=sys.stderr)
        return 2
    if name is None:
        print("profile 'none': no background traffic to drive")
        return 0
    world = SimulatedInternet(
        WorldConfig(population_size=args.population, seed=args.seed)
    )
    metrics = MetricsRegistry()
    plane = world.install_traffic(name, metrics=metrics)
    world.engine.run_days(args.days)
    print(f"profile {name}: drove {args.days} day(s) at "
          f"population {args.population}, seed {args.seed}")
    print(f"  load tier now: {plane.tier}")
    for key in sorted(plane.tallies):
        print(f"  {key}: {plane.tallies[key]}")
    open_breakers = [
        bname
        for bname, state, _failures, _trips, _open_until
        in plane.drive_state()["breakers"]
        if state != "closed"
    ]
    print(f"  breakers not closed: {len(open_breakers)}")
    for bname in open_breakers[:10]:
        print(f"    {bname}")
    return 0


def _cmd_attacks(args) -> int:
    from .attacks import ATTACK_PROFILES, normalize_attack_profile
    from .errors import ConfigurationError
    from .obs.metrics import MetricsRegistry

    if args.profile is None:
        print("attack profiles:")
        for name in sorted(ATTACK_PROFILES):
            profile = ATTACK_PROFILES[name]
            kind = (
                "equivalence" if profile.expect_equivalence else "degradation"
            )
            strikes = (
                profile.site_strikes
                + profile.block_strikes
                + profile.provider_strikes
                + profile.overwhelming_strikes
            )
            print(f"  {name:<9} ({kind}): {strikes} strike(s) — "
                  f"{profile.site_strikes} site, "
                  f"{profile.block_strikes} block, "
                  f"{profile.provider_strikes} provider, "
                  f"{profile.overwhelming_strikes} overwhelming")
            print(f"            {profile.description}")
        print("('none' disables attacks)")
        return 0
    try:
        name = normalize_attack_profile(args.profile)
    except ConfigurationError as exc:
        print(f"repro attacks: {exc}", file=sys.stderr)
        return 2
    if name is None:
        print("profile 'none': no attacks to drive")
        return 0
    world = SimulatedInternet(
        WorldConfig(population_size=args.population, seed=args.seed)
    )
    metrics = MetricsRegistry()
    plane = world.install_attacks(name, metrics=metrics)
    print(f"profile {name}: schedule at population {args.population}, "
          f"seed {args.seed}:")
    for event in plane.events:
        overwhelms = " OVERWHELMS" if event.overwhelms else ""
        print(f"  day {event.start_day:>3} +{event.duration_days}d "
              f"{event.kind.value:<13} {event.target_kind.value:<14} "
              f"{event.target} @ {event.magnitude_gbps:g} Gbps{overwhelms}")
    world.engine.run_days(args.days)
    print(f"drove {args.days} day(s); surge now "
          f"x{plane.traffic_surge:.2f}")
    for key in sorted(plane.tallies):
        print(f"  {key}: {plane.tallies[key]}")
    return 0


def _cmd_scan(world: SimulatedInternet, args) -> int:
    world.engine.run_days(args.warmup)
    hostnames = [str(s.www) for s in world.population]
    collector = DnsRecordCollector(world.make_resolver())
    snapshot = collector.collect(hostnames, day=world.clock.day)
    harvest = NameserverHarvest()
    harvest.ingest([snapshot])
    if len(harvest) == 0:
        print("no nameservers harvested; increase --population")
        return 1
    scanner = CloudflareScanner(
        harvest.resolve_addresses(world.make_resolver()),
        [world.dns_client(region) for region in PAPER_VANTAGE_REGIONS],
        rng=world.rng.fork("residual-scan"),
    )
    retrieved = scanner.scan(hostnames)
    pipeline = FilterPipeline(
        world.provider("cloudflare").prefixes,
        world.make_resolver(),
        HtmlVerifier(world.http_client(PAPER_VANTAGE_REGIONS[0])),
    )
    report = pipeline.run(retrieved, "cloudflare", week=0)
    print(f"retrieved={report.retrieved} ip-filtered={report.dropped_ip_filter} "
          f"a-filtered={report.dropped_a_filter} hidden={report.hidden_count} "
          f"verified={report.verified_count}")
    for record in report.hidden:
        verdict = "EXPOSED" if record.verified_origin else record.reason
        print(f"  {record.www} -> {record.address} [{verdict}]")
    return 0


def _cmd_attack(world: SimulatedInternet, args) -> int:
    cloudflare = world.provider("cloudflare")
    incapsula = world.provider("incapsula")
    matcher = ProviderMatcher(world.specs, world.routeviews)
    victim = next(
        s for s in world.population
        if s.provider is None and s.alive and not s.multicdn
        and not s.dynamic_meta and not s.firewall_inclined
    )
    victim.join(cloudflare, ReroutingMethod.NS_BASED)
    simulator = DdosSimulator(world.providers, matcher)
    public = world.make_resolver().resolve(victim.www)
    frontal = simulator.attack(public.addresses[0], attack_gbps=args.gbps)
    print(f"frontal flood at edge: path={frontal.path} "
          f"availability={frontal.origin_availability:.0%}")
    victim.switch(incapsula, ReroutingMethod.CNAME_BASED, PlanTier.BUSINESS)
    attacker = ResidualResolutionAttacker(world.dns_client(), matcher)
    discovery = attacker.probe_nameservers(
        victim.www, cloudflare.customer_fleet.all_addresses()[:10]
    )
    if not discovery.succeeded:
        print("discovery failed")
        return 1
    bypass = simulator.attack(discovery.candidate_origins[0], attack_gbps=args.gbps)
    print(f"bypass flood at residual origin: path={bypass.path} "
          f"availability={bypass.origin_availability:.0%} "
          f"-> {'site down' if bypass.attack_succeeded else 'survived'}")
    return 0


def _cmd_purge_probe(world: SimulatedInternet, args) -> int:
    probe = PurgeProbe(world)
    trials = probe.run_trials(count=args.trials, plan=PlanTier(args.plan))
    for trial in trials:
        purged = (
            f"purged in week {trial.purged_in_week}"
            if trial.purged_in_week is not None
            else "never purged within the probe horizon"
        )
        print(f"trial {trial.trial} ({trial.plan}): answered weeks "
              f"{trial.answered_weeks}, {purged}")
    return 0
