"""Exception hierarchy for the ``repro`` library.

Every exception raised by this library derives from :class:`ReproError`,
so callers can catch one base class at an API boundary.  Subsystems define
narrower classes here rather than in their own packages so that the whole
hierarchy is visible in one place and there are no circular imports.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "NetworkError",
    "AddressError",
    "AllocationError",
    "RoutingError",
    "DnsError",
    "NameError_",
    "ZoneError",
    "ResolutionError",
    "WebError",
    "ConnectionRefused",
    "BadGateway",
    "DpsError",
    "PortalError",
    "PlanError",
    "SimulationError",
    "MeasurementError",
    "AnalysisError",
    "CheckpointError",
    "CheckpointCorruptError",
    "CheckpointMismatchError",
    "CheckpointSchemaError",
    "SimulatedCrash",
    "ShardError",
    "ShardWorkerError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A component was constructed or wired with invalid parameters."""


# ---------------------------------------------------------------------------
# Network substrate
# ---------------------------------------------------------------------------


class NetworkError(ReproError):
    """Base class for errors in the simulated network substrate."""


class AddressError(NetworkError):
    """An IPv4 address or prefix was malformed or out of range."""


class AllocationError(NetworkError):
    """An address-space allocation could not be satisfied."""


class RoutingError(NetworkError):
    """No route/catchment could be computed for a destination."""


# ---------------------------------------------------------------------------
# DNS substrate
# ---------------------------------------------------------------------------


class DnsError(ReproError):
    """Base class for DNS-related errors."""


class NameError_(DnsError):
    """A domain name was syntactically invalid.

    Named with a trailing underscore to avoid shadowing the Python
    built-in ``NameError``.
    """


class ZoneError(DnsError):
    """A zone is malformed (e.g. record added outside the zone cut)."""


class ResolutionError(DnsError):
    """Recursive resolution failed (loop, depth exceeded, no servers)."""


# ---------------------------------------------------------------------------
# Web substrate
# ---------------------------------------------------------------------------


class WebError(ReproError):
    """Base class for the simulated HTTP layer."""


class ConnectionRefused(WebError):
    """No server listens on the target IP (or a firewall dropped us)."""


class BadGateway(WebError):
    """An edge server could not reach its configured origin."""


# ---------------------------------------------------------------------------
# DPS platform
# ---------------------------------------------------------------------------


class DpsError(ReproError):
    """Base class for DPS/CDN platform errors."""


class PortalError(DpsError):
    """An invalid customer-portal operation (e.g. pausing a non-customer)."""


class PlanError(DpsError):
    """The requested feature is not available on the customer's plan."""


# ---------------------------------------------------------------------------
# World / simulation driver
# ---------------------------------------------------------------------------


class SimulationError(ReproError):
    """The simulated world reached an inconsistent state."""


# ---------------------------------------------------------------------------
# Measurement core
# ---------------------------------------------------------------------------


class MeasurementError(ReproError):
    """A measurement component was used incorrectly (e.g. diffing
    snapshots from non-consecutive days)."""


# ---------------------------------------------------------------------------
# Static analysis
# ---------------------------------------------------------------------------


class AnalysisError(ReproError):
    """The ``repro lint`` engine was misused (bad rule ID, unreadable
    path, malformed baseline file).  Maps to CLI exit code 2."""


# ---------------------------------------------------------------------------
# Checkpoint / resume plane
# ---------------------------------------------------------------------------


class CheckpointError(ReproError):
    """Base class for checkpoint-store and resume failures."""


class CheckpointCorruptError(CheckpointError):
    """Stored state failed an integrity check: a snapshot whose content
    hash does not match its journal record, a journal record corrupted
    mid-file, or a resumed world whose replayed clock disagrees with the
    snapshot.  (A torn *tail* record is not corruption — it is the
    expected signature of a crash mid-append and is discarded.)"""


class CheckpointMismatchError(CheckpointError):
    """A resume was attempted against different inputs than the run that
    wrote the checkpoint — seed, population, study config, or fault
    profile.  Refused loudly rather than silently diverging."""


class CheckpointSchemaError(CheckpointError):
    """The checkpoint was written by an incompatible schema version."""


class SimulatedCrash(ReproError):
    """Raised by a ``CRASH`` fault at its checkpoint barrier — the
    deterministic stand-in for ``kill -9`` that the kill-matrix harness
    uses to cut a study short at a known point."""


# ---------------------------------------------------------------------------
# Sharded execution plane
# ---------------------------------------------------------------------------


class ShardError(ReproError):
    """The sharded study runner or merge detected an inconsistency:
    worker payloads from mismatched topologies or positions, a worker
    process that died without reporting, or merge inputs that could not
    have come from one lockstep run."""


class ShardWorkerError(ShardError):
    """A forked shard worker stopped participating in the lockstep —
    it died mid-protocol or failed to answer an operation within the
    coordinator's deadline.  The coordinator terminates the straggler
    and raises this (naming the shard and the operation) instead of
    blocking forever on a pipe that will never fill."""
