"""Exception hierarchy for the ``repro`` library.

Every exception raised by this library derives from :class:`ReproError`,
so callers can catch one base class at an API boundary.  Subsystems define
narrower classes here rather than in their own packages so that the whole
hierarchy is visible in one place and there are no circular imports.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "NetworkError",
    "AddressError",
    "AllocationError",
    "RoutingError",
    "DnsError",
    "NameError_",
    "ZoneError",
    "ResolutionError",
    "WebError",
    "ConnectionRefused",
    "BadGateway",
    "DpsError",
    "PortalError",
    "PlanError",
    "SimulationError",
    "MeasurementError",
    "AnalysisError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A component was constructed or wired with invalid parameters."""


# ---------------------------------------------------------------------------
# Network substrate
# ---------------------------------------------------------------------------


class NetworkError(ReproError):
    """Base class for errors in the simulated network substrate."""


class AddressError(NetworkError):
    """An IPv4 address or prefix was malformed or out of range."""


class AllocationError(NetworkError):
    """An address-space allocation could not be satisfied."""


class RoutingError(NetworkError):
    """No route/catchment could be computed for a destination."""


# ---------------------------------------------------------------------------
# DNS substrate
# ---------------------------------------------------------------------------


class DnsError(ReproError):
    """Base class for DNS-related errors."""


class NameError_(DnsError):
    """A domain name was syntactically invalid.

    Named with a trailing underscore to avoid shadowing the Python
    built-in ``NameError``.
    """


class ZoneError(DnsError):
    """A zone is malformed (e.g. record added outside the zone cut)."""


class ResolutionError(DnsError):
    """Recursive resolution failed (loop, depth exceeded, no servers)."""


# ---------------------------------------------------------------------------
# Web substrate
# ---------------------------------------------------------------------------


class WebError(ReproError):
    """Base class for the simulated HTTP layer."""


class ConnectionRefused(WebError):
    """No server listens on the target IP (or a firewall dropped us)."""


class BadGateway(WebError):
    """An edge server could not reach its configured origin."""


# ---------------------------------------------------------------------------
# DPS platform
# ---------------------------------------------------------------------------


class DpsError(ReproError):
    """Base class for DPS/CDN platform errors."""


class PortalError(DpsError):
    """An invalid customer-portal operation (e.g. pausing a non-customer)."""


class PlanError(DpsError):
    """The requested feature is not available on the customer's plan."""


# ---------------------------------------------------------------------------
# World / simulation driver
# ---------------------------------------------------------------------------


class SimulationError(ReproError):
    """The simulated world reached an inconsistent state."""


# ---------------------------------------------------------------------------
# Measurement core
# ---------------------------------------------------------------------------


class MeasurementError(ReproError):
    """A measurement component was used incorrectly (e.g. diffing
    snapshots from non-consecutive days)."""


# ---------------------------------------------------------------------------
# Static analysis
# ---------------------------------------------------------------------------


class AnalysisError(ReproError):
    """The ``repro lint`` engine was misused (bad rule ID, unreadable
    path, malformed baseline file).  Maps to CLI exit code 2."""
