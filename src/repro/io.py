"""Crash-safe file primitives.

Every file the library persists across process boundaries — study
exports, bench/chaos payloads, checkpoint snapshots, the write-ahead
journal — goes through this module.  A plain ``open(..., "w")`` can be
torn by a crash mid-write, leaving a half-file that parses as neither
the old nor the new state; the atomic helpers here write to a temporary
sibling, ``fsync`` it, and ``rename`` over the target, so readers only
ever observe a complete before- or after-image.

The ``repro lint`` rule REP031 flags direct ``open(..., "w")`` /
``write_text`` calls elsewhere in the package so new persistence paths
cannot quietly bypass these helpers.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

__all__ = [
    "atomic_write_text",
    "atomic_write_json",
    "append_durable_line",
    "fsync_directory",
]


def fsync_directory(directory: "str | Path") -> None:
    """Flush a directory entry so a completed rename survives a crash.

    Best-effort: some filesystems refuse ``O_RDONLY`` on directories;
    the rename itself is still atomic there, only its durability window
    is wider.
    """
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_text(
    path: "str | Path", text: str, encoding: str = "utf-8"
) -> Path:
    """Write ``text`` to ``path`` atomically (tmp + fsync + rename).

    The temporary file lives in the target's directory so the final
    ``os.replace`` never crosses a filesystem boundary.  Returns the
    target path.
    """
    target = Path(path)
    tmp = target.parent / f".{target.name}.tmp.{os.getpid()}"
    fd = os.open(str(tmp), os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
    except BaseException:  # repro: allow[REP021] -- cleanup-and-reraise: the tmp file must not survive even KeyboardInterrupt
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    fsync_directory(target.parent)
    return target


def atomic_write_json(
    path: "str | Path",
    payload: Any,
    indent: "int | None" = 2,
    sort_keys: bool = True,
    trailing_newline: bool = True,
) -> Path:
    """Serialise ``payload`` and write it atomically; returns the path."""
    text = json.dumps(payload, indent=indent, sort_keys=sort_keys)
    return atomic_write_text(path, text + "\n" if trailing_newline else text)


def append_durable_line(path: "str | Path", line: str) -> None:
    """Append one newline-terminated record and fsync it to disk.

    The write-ahead journal's primitive: a record is only considered
    committed once this returns.  ``line`` must not contain newlines —
    one record per line is what makes a torn tail detectable.
    """
    if "\n" in line:
        raise ValueError("journal records must be single lines")
    with open(path, "a", encoding="utf-8") as handle:  # repro: allow[REP031] -- this IS the sanctioned durable-append primitive
        handle.write(line + "\n")
        handle.flush()
        os.fsync(handle.fileno())
