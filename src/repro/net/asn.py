"""Autonomous systems and the AS registry.

Each simulated organisation (a DPS provider, a hosting company, a cloud)
owns one or more autonomous systems; each AS originates a set of IPv4
prefixes.  The registry is the source from which the RouteViews-style
prefix database (:mod:`repro.net.routeviews`) is derived — exactly as the
paper derives provider IP ranges from AS numbers via the RouteView
archive (§IV-B-2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import ConfigurationError
from .ipaddr import IPv4Prefix

__all__ = ["AutonomousSystem", "AsRegistry"]


@dataclass
class AutonomousSystem:
    """One autonomous system: a number, an owning organisation, prefixes."""

    number: int
    organisation: str
    prefixes: List[IPv4Prefix] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.number <= 0:
            raise ConfigurationError(f"AS number must be positive: {self.number}")

    def announce(self, prefix: "IPv4Prefix | str") -> IPv4Prefix:
        """Originate an additional prefix from this AS."""
        parsed = IPv4Prefix(prefix)
        self.prefixes.append(parsed)
        return parsed


class AsRegistry:
    """Registry of every AS in the simulated Internet.

    Guarantees AS-number uniqueness and provides organisation-level
    lookups (`"which ASes belong to Cloudflare?"`), matching the paper's
    manual collection of provider AS numbers from as2.0/autnums.
    """

    def __init__(self) -> None:
        self._by_number: Dict[int, AutonomousSystem] = {}
        self._by_org: Dict[str, List[AutonomousSystem]] = {}

    def register(
        self,
        number: int,
        organisation: str,
        prefixes: Iterable["IPv4Prefix | str"] = (),
    ) -> AutonomousSystem:
        """Create and register a new AS."""
        if number in self._by_number:
            raise ConfigurationError(f"AS{number} already registered")
        asys = AutonomousSystem(number, organisation, [IPv4Prefix(p) for p in prefixes])
        self._by_number[number] = asys
        self._by_org.setdefault(organisation, []).append(asys)
        return asys

    def get(self, number: int) -> Optional[AutonomousSystem]:
        """Look up an AS by number, or None."""
        return self._by_number.get(number)

    def organisation_of(self, number: int) -> Optional[str]:
        """Name of the organisation owning AS ``number``, or None."""
        asys = self._by_number.get(number)
        return asys.organisation if asys else None

    def ases_of(self, organisation: str) -> List[AutonomousSystem]:
        """All ASes registered to an organisation."""
        return list(self._by_org.get(organisation, []))

    def numbers_of(self, organisation: str) -> List[int]:
        """AS numbers registered to an organisation."""
        return [asys.number for asys in self._by_org.get(organisation, [])]

    def prefixes_of(self, organisation: str) -> List[IPv4Prefix]:
        """All prefixes originated by an organisation's ASes."""
        prefixes: List[IPv4Prefix] = []
        for asys in self._by_org.get(organisation, []):
            prefixes.extend(asys.prefixes)
        return prefixes

    def all_announcements(self) -> List[Tuple[IPv4Prefix, int]]:
        """Every (prefix, origin ASN) pair — the input to a BGP table."""
        announcements: List[Tuple[IPv4Prefix, int]] = []
        for asys in self._by_number.values():
            for prefix in asys.prefixes:
                announcements.append((prefix, asys.number))
        return announcements

    def __len__(self) -> int:
        return len(self._by_number)

    def __iter__(self):
        return iter(self._by_number.values())
