"""Volumetric traffic and capacity model.

This is the substrate for the end-to-end consequence the paper motivates:
a DDoS flood aimed at a DPS edge address is absorbed by scrubbing centres
with multi-Tbps aggregate capacity, while the same flood aimed directly
at a residually-resolved origin overwhelms the origin's uplink (Fig. 1).

Volumes are expressed in Gbps.  The model is intentionally coarse — the
paper makes no packet-level claims — but it distinguishes legitimate from
attack traffic so scrubbing (which drops only attack traffic) and plain
capacity exhaustion (which drops both) behave differently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from ..errors import ConfigurationError

__all__ = [
    "TrafficFlow",
    "DeliveryReport",
    "CapacityTarget",
    "combine_flows",
    "zipf_weights",
]


def zipf_weights(count: int, exponent: float = 1.1) -> List[float]:
    """Normalised Zipf popularity weights for ``count`` ranked clients.

    Weight of rank ``k`` (1-based) is proportional to ``1 / k**exponent``;
    the list sums to 1.0.  This is the client-popularity skew the
    background-load plane (:mod:`repro.traffic`) uses: a handful of large
    resolver operators dominate a region's query volume, which is what
    makes per-client token buckets meaningful.
    """
    if count < 1:
        raise ConfigurationError(f"zipf_weights needs count >= 1: {count}")
    if exponent <= 0:
        raise ConfigurationError(
            f"zipf exponent must be positive: {exponent}"
        )
    raw = [1.0 / (rank ** exponent) for rank in range(1, count + 1)]
    total = sum(raw)
    return [weight / total for weight in raw]


@dataclass(frozen=True)
class TrafficFlow:
    """A traffic aggregate heading to one destination.

    ``legitimate_gbps`` models real user traffic; ``attack_gbps`` models
    flood traffic.  A scrubbing centre can remove the latter; a plain
    origin server cannot.
    """

    legitimate_gbps: float = 0.0
    attack_gbps: float = 0.0

    def __post_init__(self) -> None:
        if self.legitimate_gbps < 0 or self.attack_gbps < 0:
            raise ConfigurationError("traffic volumes must be non-negative")

    @property
    def total_gbps(self) -> float:
        """Total offered load."""
        return self.legitimate_gbps + self.attack_gbps

    def scaled(self, factor: float) -> "TrafficFlow":
        """Return this flow scaled by a non-negative factor."""
        if factor < 0:
            raise ConfigurationError(f"scale factor must be non-negative: {factor}")
        return TrafficFlow(self.legitimate_gbps * factor, self.attack_gbps * factor)


def combine_flows(flows: Iterable[TrafficFlow]) -> TrafficFlow:
    """Sum several flows into one aggregate."""
    legitimate = attack = 0.0
    for flow in flows:
        legitimate += flow.legitimate_gbps
        attack += flow.attack_gbps
    return TrafficFlow(legitimate, attack)


@dataclass(frozen=True)
class DeliveryReport:
    """Outcome of offering a flow to a capacity-limited target."""

    offered: TrafficFlow
    delivered_legitimate_gbps: float
    delivered_attack_gbps: float
    saturated: bool

    @property
    def dropped_gbps(self) -> float:
        """Total traffic that did not get through."""
        return self.offered.total_gbps - (
            self.delivered_legitimate_gbps + self.delivered_attack_gbps
        )

    @property
    def availability(self) -> float:
        """Fraction of legitimate traffic that got through (1.0 = healthy).

        Returns 1.0 when there was no legitimate traffic to deliver.
        """
        if self.offered.legitimate_gbps == 0:
            return 1.0
        return self.delivered_legitimate_gbps / self.offered.legitimate_gbps


class CapacityTarget:
    """Anything with a finite ingest capacity: an origin uplink or a PoP.

    When offered load exceeds capacity the target becomes *saturated* and
    drops traffic indiscriminately — legitimate and attack packets suffer
    the same loss rate, which is what makes volumetric DDoS effective.
    """

    def __init__(self, name: str, capacity_gbps: float) -> None:
        if capacity_gbps <= 0:
            raise ConfigurationError(f"capacity must be positive: {capacity_gbps}")
        self.name = name
        self.capacity_gbps = capacity_gbps

    def offer(self, flow: TrafficFlow) -> DeliveryReport:
        """Offer a flow; compute what gets through."""
        total = flow.total_gbps
        if total <= self.capacity_gbps:
            return DeliveryReport(
                offered=flow,
                delivered_legitimate_gbps=flow.legitimate_gbps,
                delivered_attack_gbps=flow.attack_gbps,
                saturated=False,
            )
        keep = self.capacity_gbps / total
        return DeliveryReport(
            offered=flow,
            delivered_legitimate_gbps=flow.legitimate_gbps * keep,
            delivered_attack_gbps=flow.attack_gbps * keep,
            saturated=True,
        )

    def survives(self, flow: TrafficFlow) -> bool:
        """True when the target is not saturated by the offered flow."""
        return flow.total_gbps <= self.capacity_gbps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CapacityTarget({self.name!r}, {self.capacity_gbps} Gbps)"
