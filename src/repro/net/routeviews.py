"""RouteViews-style IP-to-AS database with longest-prefix matching.

The paper maps collected A-record IP addresses onto DPS providers by
matching them against provider IP ranges extracted from the RouteView
BGP archive (§IV-B-2, footnote 4).  :class:`RouteViewsDb` reproduces
that capability: it ingests (prefix, origin-ASN) announcements and
answers longest-prefix-match lookups.

The matcher is a binary-trie over prefix bits; lookups are O(32) and the
table easily holds the few hundred announcements the simulation makes.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from .asn import AsRegistry
from .ipaddr import IPv4Address, IPv4Prefix

__all__ = ["RouteViewsDb"]


class _TrieNode:
    __slots__ = ("children", "asn", "prefix")

    def __init__(self) -> None:
        self.children: List[Optional[_TrieNode]] = [None, None]
        self.asn: Optional[int] = None
        self.prefix: Optional[IPv4Prefix] = None


class RouteViewsDb:  # repro: allow[REP063] -- world-layer state; rebuilt from (seed, population) by deterministic replay, never serialized by design
    """Longest-prefix-match database from prefix announcements."""

    def __init__(self) -> None:
        self._root = _TrieNode()
        self._size = 0

    @classmethod
    def from_registry(cls, registry: AsRegistry) -> "RouteViewsDb":
        """Build the database from every announcement in an AS registry."""
        db = cls()
        for prefix, asn in registry.all_announcements():
            db.announce(prefix, asn)
        return db

    @classmethod
    def from_announcements(
        cls, announcements: Iterable[Tuple["IPv4Prefix | str", int]]
    ) -> "RouteViewsDb":
        """Build the database from (prefix, asn) pairs."""
        db = cls()
        for prefix, asn in announcements:
            db.announce(prefix, asn)
        return db

    def announce(self, prefix: "IPv4Prefix | str", asn: int) -> None:
        """Insert (or overwrite) an announcement."""
        parsed = IPv4Prefix(prefix)
        node = self._root
        bits = parsed.network.value
        for i in range(parsed.length):
            bit = (bits >> (31 - i)) & 1
            if node.children[bit] is None:
                node.children[bit] = _TrieNode()
            node = node.children[bit]
        if node.asn is None:
            self._size += 1
        node.asn = asn
        node.prefix = parsed

    def withdraw(self, prefix: "IPv4Prefix | str") -> bool:
        """Remove an announcement; returns False if it was absent."""
        parsed = IPv4Prefix(prefix)
        node = self._root
        bits = parsed.network.value
        for i in range(parsed.length):
            bit = (bits >> (31 - i)) & 1
            child = node.children[bit]
            if child is None:
                return False
            node = child
        if node.asn is None:
            return False
        node.asn = None
        node.prefix = None
        self._size -= 1
        return True

    def lookup(self, address: "IPv4Address | str | int") -> Optional[int]:
        """Origin ASN for ``address`` by longest-prefix match, or None."""
        match = self.lookup_prefix(address)
        return match[1] if match else None

    def lookup_prefix(
        self, address: "IPv4Address | str | int"
    ) -> Optional[Tuple[IPv4Prefix, int]]:
        """(matched prefix, origin ASN) for ``address``, or None."""
        addr = IPv4Address(address)
        node = self._root
        best: Optional[Tuple[IPv4Prefix, int]] = None
        if node.asn is not None and node.prefix is not None:
            best = (node.prefix, node.asn)
        bits = addr.value
        for i in range(32):
            bit = (bits >> (31 - i)) & 1
            child = node.children[bit]
            if child is None:
                break
            node = child
            if node.asn is not None and node.prefix is not None:
                best = (node.prefix, node.asn)
        return best

    def __len__(self) -> int:
        return self._size
