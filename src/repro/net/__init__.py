"""Simulated network substrate: addressing, AS/BGP data, geography,
anycast routing, and volumetric traffic.

These are the layers beneath both the DNS ecosystem and the DPS
platforms.  See DESIGN.md §3 for the system inventory.
"""

from .anycast import AnycastNetwork
from .asn import AsRegistry, AutonomousSystem
from .geo import (
    GeoLocation,
    PAPER_VANTAGE_REGIONS,
    PointOfPresence,
    Region,
    VantagePoint,
    WELL_KNOWN_REGIONS,
    great_circle_km,
    region,
)
from .ipaddr import AddressAllocator, IPv4Address, IPv4Prefix
from .routeviews import RouteViewsDb
from .traffic import CapacityTarget, DeliveryReport, TrafficFlow, combine_flows

__all__ = [
    "AnycastNetwork",
    "AsRegistry",
    "AutonomousSystem",
    "GeoLocation",
    "PAPER_VANTAGE_REGIONS",
    "PointOfPresence",
    "Region",
    "VantagePoint",
    "WELL_KNOWN_REGIONS",
    "great_circle_km",
    "region",
    "AddressAllocator",
    "IPv4Address",
    "IPv4Prefix",
    "RouteViewsDb",
    "CapacityTarget",
    "DeliveryReport",
    "TrafficFlow",
    "combine_flows",
]
