"""Anycast catchment model.

Cloudflare serves DNS from one address announced at 100+ PoPs; which
physical machine answers depends on where the client sits (§V-A-1).  The
paper exploits this to spread its scan load: five vantage points land in
five different catchments (Fig. 7).

:class:`AnycastNetwork` models the catchment as nearest-PoP-by-
great-circle-distance, which is the standard first-order approximation of
BGP anycast routing and preserves the property the experiment needs —
distinct, stable catchments for geographically distinct clients.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from ..errors import ConfigurationError, RoutingError
from .geo import PointOfPresence, Region

__all__ = ["AnycastNetwork"]


class AnycastNetwork:
    """A set of PoPs reachable via one anycast address family.

    Parameters
    ----------
    name:
        Network label (e.g. ``"cloudflare-anycast"``).
    pops:
        The PoPs announcing the anycast prefixes.
    """

    def __init__(self, name: str, pops: Iterable[PointOfPresence]) -> None:
        self.name = name
        self._pops: List[PointOfPresence] = list(pops)
        if not self._pops:
            raise ConfigurationError(f"anycast network {name!r} needs at least one PoP")
        ids = [p.pop_id for p in self._pops]
        if len(set(ids)) != len(ids):
            raise ConfigurationError(f"duplicate PoP ids in network {name!r}")

    @property
    def pops(self) -> Sequence[PointOfPresence]:
        """All PoPs in the network."""
        return tuple(self._pops)

    def catchment(self, client_region: Region) -> PointOfPresence:
        """The PoP that captures traffic from ``client_region``.

        Nearest-by-distance with deterministic tie-breaking on PoP id, so
        repeated queries from one region always land on the same PoP —
        the stability property the paper's load-spreading relies on.
        """
        if not self._pops:
            raise RoutingError(f"network {self.name!r} has no PoPs")
        return min(
            self._pops,
            key=lambda pop: (pop.distance_to(client_region), pop.pop_id),
        )

    def catchment_map(self, client_regions: Iterable[Region]) -> Dict[str, PointOfPresence]:
        """Map each client region name to its capturing PoP."""
        return {region.name: self.catchment(region) for region in client_regions}

    def distinct_catchments(self, client_regions: Iterable[Region]) -> int:
        """Number of distinct PoPs hit by the given client regions.

        The paper's five vantage points were chosen so this equals five
        for Cloudflare's network — each scanner talks to its own PoP.
        """
        return len({pop.pop_id for pop in self.catchment_map(client_regions).values()})

    def load_share(self, client_regions: Sequence[Region]) -> Dict[str, float]:
        """Fraction of clients captured per PoP id (PoPs with zero load omitted)."""
        counts: Dict[str, int] = {}
        regions = list(client_regions)
        for client in regions:
            pop = self.catchment(client)
            counts[pop.pop_id] = counts.get(pop.pop_id, 0) + 1
        total = len(regions)
        return {pop_id: count / total for pop_id, count in counts.items()}

    def __len__(self) -> int:
        return len(self._pops)
