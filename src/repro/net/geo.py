"""Geography: regions, points of presence, vantage points.

The paper distributes its residual-resolution scan over five cloud
vantage points (Oregon, London, Sydney, Singapore, Tokyo — Fig. 7) so the
query load spreads over distinct PoPs of Cloudflare's anycast network.
This module provides the coordinate system those experiments need: a
small spherical-distance model, a catalog of named regions, and the
:class:`PointOfPresence` / :class:`VantagePoint` records used by the
anycast catchment model in :mod:`repro.net.anycast`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import ConfigurationError

__all__ = [
    "GeoLocation",
    "Region",
    "PointOfPresence",
    "VantagePoint",
    "WELL_KNOWN_REGIONS",
    "PAPER_VANTAGE_REGIONS",
    "great_circle_km",
]

_EARTH_RADIUS_KM = 6371.0


@dataclass(frozen=True)
class GeoLocation:
    """A latitude/longitude pair in degrees."""

    latitude: float
    longitude: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.latitude <= 90.0:
            raise ConfigurationError(f"latitude out of range: {self.latitude}")
        if not -180.0 <= self.longitude <= 180.0:
            raise ConfigurationError(f"longitude out of range: {self.longitude}")


def great_circle_km(a: GeoLocation, b: GeoLocation) -> float:
    """Great-circle distance between two locations in kilometres."""
    lat1, lon1 = math.radians(a.latitude), math.radians(a.longitude)
    lat2, lon2 = math.radians(b.latitude), math.radians(b.longitude)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2) ** 2
    return 2 * _EARTH_RADIUS_KM * math.asin(math.sqrt(h))


@dataclass(frozen=True)
class Region:
    """A named geographic region (cloud region or metro)."""

    name: str
    location: GeoLocation

    def distance_to(self, other: "Region") -> float:
        """Great-circle distance to another region in km."""
        return great_circle_km(self.location, other.location)


#: Catalog of regions used throughout the simulation.  Includes the five
#: vantage-point regions of the paper (Fig. 7) plus enough extra metros
#: to give anycast networks global coverage.
WELL_KNOWN_REGIONS: Dict[str, Region] = {
    region.name: region
    for region in [
        Region("oregon", GeoLocation(45.52, -122.68)),
        Region("london", GeoLocation(51.51, -0.13)),
        Region("sydney", GeoLocation(-33.87, 151.21)),
        Region("singapore", GeoLocation(1.35, 103.82)),
        Region("tokyo", GeoLocation(35.68, 139.69)),
        Region("virginia", GeoLocation(38.80, -77.05)),
        Region("frankfurt", GeoLocation(50.11, 8.68)),
        Region("sao-paulo", GeoLocation(-23.55, -46.63)),
        Region("mumbai", GeoLocation(19.08, 72.88)),
        Region("johannesburg", GeoLocation(-26.20, 28.05)),
        Region("hong-kong", GeoLocation(22.32, 114.17)),
        Region("chicago", GeoLocation(41.88, -87.63)),
        Region("amsterdam", GeoLocation(52.37, 4.90)),
        Region("dubai", GeoLocation(25.20, 55.27)),
        Region("seoul", GeoLocation(37.57, 126.98)),
        Region("paris", GeoLocation(48.86, 2.35)),
        Region("toronto", GeoLocation(43.65, -79.38)),
        Region("moscow", GeoLocation(55.76, 37.62)),
        Region("madrid", GeoLocation(40.42, -3.70)),
        Region("stockholm", GeoLocation(59.33, 18.07)),
    ]
}

#: The five vantage-point regions used in the paper's Cloudflare scan.
PAPER_VANTAGE_REGIONS: List[str] = [
    "oregon",
    "london",
    "sydney",
    "singapore",
    "tokyo",
]


def region(name: str) -> Region:
    """Look up a well-known region by name."""
    try:
        return WELL_KNOWN_REGIONS[name]
    except KeyError:
        raise ConfigurationError(f"unknown region: {name!r}") from None


@dataclass(frozen=True)
class PointOfPresence:
    """One PoP of an anycast network: an identifier pinned to a region."""

    pop_id: str
    region: Region

    def distance_to(self, other_region: Region) -> float:
        """Distance from this PoP to a client region, in km."""
        return self.region.distance_to(other_region)


@dataclass(frozen=True)
class VantagePoint:
    """A measurement host: a name, a region, and a source address.

    The paper's scanners run from five of these (Fig. 7); the address is
    assigned from the simulated cloud provider's space so that reverse
    lookups and firewalls behave realistically.
    """

    name: str
    region: Region
    source_ip: Optional[object] = None  # IPv4Address; typed loosely to avoid import cycle
