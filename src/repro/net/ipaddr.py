"""IPv4 addresses, prefixes, and address-space allocation.

The simulated Internet needs its own address plan: provider edge ranges,
origin-server pools, vantage-point addresses.  This module provides value
types (:class:`IPv4Address`, :class:`IPv4Prefix`) plus an
:class:`AddressAllocator` that carves disjoint prefixes out of a parent
block, mirroring how a registry hands out allocations.

The types are deliberately lighter than :mod:`ipaddress` from the standard
library — hashable, comparable, integer-backed — because the measurement
pipeline holds millions of them in sets.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..errors import AddressError, AllocationError

__all__ = ["IPv4Address", "IPv4Prefix", "AddressAllocator"]

_MAX_IPV4 = (1 << 32) - 1


class IPv4Address:
    """An IPv4 address backed by a single integer.

    Instances are immutable, hashable, and totally ordered by numeric
    value, so they can live in sets and sorted structures.
    """

    __slots__ = ("_value",)

    def __init__(self, value: "int | str | IPv4Address") -> None:
        if isinstance(value, IPv4Address):
            self._value = value._value
        elif isinstance(value, int):
            if not 0 <= value <= _MAX_IPV4:
                raise AddressError(f"IPv4 value out of range: {value}")
            self._value = value
        elif isinstance(value, str):
            self._value = _parse_dotted_quad(value)
        else:
            raise AddressError(f"cannot build IPv4Address from {type(value).__name__}")

    @property
    def value(self) -> int:
        """The address as an unsigned 32-bit integer."""
        return self._value

    def __int__(self) -> int:
        return self._value

    def __str__(self) -> str:
        v = self._value
        return f"{(v >> 24) & 0xFF}.{(v >> 16) & 0xFF}.{(v >> 8) & 0xFF}.{v & 0xFF}"

    def __repr__(self) -> str:
        return f"IPv4Address('{self}')"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IPv4Address) and other._value == self._value

    def __lt__(self, other: "IPv4Address") -> bool:
        if not isinstance(other, IPv4Address):
            return NotImplemented
        return self._value < other._value

    def __le__(self, other: "IPv4Address") -> bool:
        if not isinstance(other, IPv4Address):
            return NotImplemented
        return self._value <= other._value

    def __hash__(self) -> int:
        return hash(self._value)

    def __add__(self, offset: int) -> "IPv4Address":
        return IPv4Address(self._value + offset)


def _parse_dotted_quad(text: str) -> int:
    parts = text.strip().split(".")
    if len(parts) != 4:
        raise AddressError(f"malformed IPv4 address: {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise AddressError(f"malformed IPv4 address: {text!r}")
        octet = int(part)
        if octet > 255:
            raise AddressError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


class IPv4Prefix:
    """A CIDR prefix such as ``198.51.100.0/24``.

    The network address is canonicalised (host bits cleared) at
    construction; ``IPv4Prefix("10.0.0.7/8")`` equals
    ``IPv4Prefix("10.0.0.0/8")``.
    """

    __slots__ = ("_network", "_length")

    def __init__(self, spec: "str | IPv4Prefix", length: Optional[int] = None) -> None:
        if isinstance(spec, IPv4Prefix):
            self._network, self._length = spec._network, spec._length
            return
        if length is None:
            if "/" not in spec:
                raise AddressError(f"prefix needs a /length: {spec!r}")
            addr_text, _, len_text = spec.partition("/")
            if not len_text.isdigit():
                raise AddressError(f"malformed prefix length in {spec!r}")
            length = int(len_text)
        else:
            addr_text = str(spec)
        if not 0 <= length <= 32:
            raise AddressError(f"prefix length out of range: {length}")
        base = _parse_dotted_quad(addr_text)
        mask = _mask_for(length)
        self._network = base & mask
        self._length = length

    @classmethod
    def from_int(cls, network: int, length: int) -> "IPv4Prefix":
        """Build a prefix from an integer network address and a length."""
        prefix = cls.__new__(cls)
        if not 0 <= length <= 32:
            raise AddressError(f"prefix length out of range: {length}")
        if not 0 <= network <= _MAX_IPV4:
            raise AddressError(f"network out of range: {network}")
        prefix._network = network & _mask_for(length)
        prefix._length = length
        return prefix

    @property
    def network(self) -> IPv4Address:
        """First address of the prefix."""
        return IPv4Address(self._network)

    @property
    def length(self) -> int:
        """The mask length (0-32)."""
        return self._length

    @property
    def num_addresses(self) -> int:
        """Total addresses covered, including network/broadcast."""
        return 1 << (32 - self._length)

    def __contains__(self, address: "IPv4Address | str | int") -> bool:
        addr = IPv4Address(address)
        return (addr.value & _mask_for(self._length)) == self._network

    def contains_prefix(self, other: "IPv4Prefix") -> bool:
        """True when ``other`` is fully inside this prefix."""
        return other._length >= self._length and (
            other._network & _mask_for(self._length)
        ) == self._network

    def overlaps(self, other: "IPv4Prefix") -> bool:
        """True when the two prefixes share any address."""
        return self.contains_prefix(other) or other.contains_prefix(self)

    def addresses(self) -> Iterator[IPv4Address]:
        """Iterate every address in the prefix (use on small prefixes)."""
        for offset in range(self.num_addresses):
            yield IPv4Address(self._network + offset)

    def address_at(self, offset: int) -> IPv4Address:
        """Return the address ``offset`` slots into the prefix."""
        if not 0 <= offset < self.num_addresses:
            raise AddressError(
                f"offset {offset} outside {self} ({self.num_addresses} addresses)"
            )
        return IPv4Address(self._network + offset)

    def subnets(self, new_length: int) -> Iterator["IPv4Prefix"]:
        """Split into equal subnets of ``new_length``."""
        if new_length < self._length or new_length > 32:
            raise AddressError(
                f"cannot split /{self._length} into /{new_length} subnets"
            )
        step = 1 << (32 - new_length)
        for network in range(self._network, self._network + self.num_addresses, step):
            yield IPv4Prefix.from_int(network, new_length)

    def __str__(self) -> str:
        return f"{IPv4Address(self._network)}/{self._length}"

    def __repr__(self) -> str:
        return f"IPv4Prefix('{self}')"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, IPv4Prefix)
            and other._network == self._network
            and other._length == self._length
        )

    def __hash__(self) -> int:
        return hash((self._network, self._length))


def _mask_for(length: int) -> int:
    if length == 0:
        return 0
    return (_MAX_IPV4 << (32 - length)) & _MAX_IPV4


class AddressAllocator:
    """Carves disjoint sub-prefixes and single addresses out of a block.

    Acts like a tiny regional Internet registry for the simulation: DPS
    providers, hosting providers, and vantage-point clouds each request
    allocations, and the allocator guarantees they never overlap.
    """

    def __init__(self, block: "IPv4Prefix | str") -> None:
        self._block = IPv4Prefix(block)
        self._cursor = self._block.network.value
        self._end = self._block.network.value + self._block.num_addresses

    @property
    def block(self) -> IPv4Prefix:
        """The parent block allocations are carved from."""
        return self._block

    @property
    def remaining(self) -> int:
        """Addresses not yet handed out."""
        return self._end - self._cursor

    def allocate_prefix(self, length: int) -> IPv4Prefix:
        """Allocate the next aligned prefix of the given length."""
        if length < self._block.length or length > 32:
            raise AllocationError(
                f"cannot allocate /{length} from {self._block}"
            )
        size = 1 << (32 - length)
        aligned = (self._cursor + size - 1) & ~(size - 1)
        if aligned + size > self._end:
            raise AllocationError(
                f"block {self._block} exhausted (requested /{length})"
            )
        self._cursor = aligned + size
        return IPv4Prefix.from_int(aligned, length)

    def allocate_address(self) -> IPv4Address:
        """Allocate a single address."""
        if self._cursor >= self._end:
            raise AllocationError(f"block {self._block} exhausted")
        address = IPv4Address(self._cursor)
        self._cursor += 1
        return address

    def allocate_addresses(self, count: int) -> List[IPv4Address]:
        """Allocate ``count`` consecutive single addresses."""
        return [self.allocate_address() for _ in range(count)]
