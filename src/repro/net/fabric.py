"""Network fabric: delivers messages to the server owning an IP address.

The fabric is the simulation's data plane.  DNS servers and HTTP
listeners register under the addresses they serve; resolvers and HTTP
clients ask the fabric which handler owns a destination address.  Anycast
addresses register a whole PoP fleet at once, and lookups from different
client regions reach different physical servers — the behaviour the
paper's vantage-point design exploits (§V-A-1, Fig. 7).

Handlers are duck-typed: DNS servers expose
``handle_query(query, client_region) -> DnsResponse`` and HTTP listeners
expose ``handle_request(request) -> HttpResponse``.

A :class:`~repro.faults.plan.FaultPlan` may be installed on the fabric
(``fabric.fault_plan = plan``); the ``deliver_dns`` / ``deliver_http``
paths then consult it on every delivery and can drop the packet, charge
latency, or substitute a synthetic failure response.  The plan is
duck-typed too (``intercept_dns`` / ``intercept_http`` returning a
verdict with ``delivered`` / ``response`` / ``outcome`` / ``latency_ms``)
so this module never imports the DNS layer.
"""

from __future__ import annotations

from typing import Dict, NamedTuple, Optional

from ..errors import ConfigurationError, RoutingError
from .anycast import AnycastNetwork
from .geo import Region
from .ipaddr import IPv4Address

__all__ = ["NetworkFabric", "Delivery"]


class Delivery(NamedTuple):
    """Result of one fault-aware delivery through the fabric.

    ``response`` is the server's (or the fault plan's synthetic) answer,
    None for a timeout.  ``outcome`` says what happened: ``delivered``,
    ``dark`` (no handler at the address), a fault-plan outcome
    (``loss``, ``outage``, ``rate-limited``, ``servfail``, ``lame``),
    or a traffic-defense outcome (``throttled`` — rate-limit drop, the
    client sees a timeout; ``shed`` — breaker open / load shedding, the
    client sees a synthetic REFUSED).  ``latency_ms`` is injected
    latency for the caller's retry budget — accounting only, it never
    advances the simulation clock.
    """

    response: Optional[object]
    outcome: str
    latency_ms: int = 0


class _AnycastBinding:
    """An anycast address: a catchment model plus one server per PoP."""

    __slots__ = ("network", "servers")

    def __init__(self, network: AnycastNetwork, servers: Dict[str, object]) -> None:
        missing = {pop.pop_id for pop in network.pops} - set(servers)
        if missing:
            raise ConfigurationError(
                f"anycast binding missing servers for PoPs: {sorted(missing)}"
            )
        self.network = network
        self.servers = dict(servers)

    def server_for(self, client_region: Optional[Region]) -> object:
        if client_region is None:
            # Deterministic fallback: the alphabetically-first PoP.
            pop_id = min(self.servers)
            return self.servers[pop_id]
        pop = self.network.catchment(client_region)
        return self.servers[pop.pop_id]


class NetworkFabric:
    """Routes destination addresses to registered handlers."""

    def __init__(self) -> None:
        self._dns_unicast: Dict[IPv4Address, object] = {}
        self._dns_anycast: Dict[IPv4Address, _AnycastBinding] = {}
        self._http_unicast: Dict[IPv4Address, object] = {}
        self._http_anycast: Dict[IPv4Address, _AnycastBinding] = {}
        #: Optional fault-injection plan consulted by deliver_dns/_http.
        self.fault_plan: Optional[object] = None
        #: Optional background-traffic plane whose provider-side defense
        #: stack (token buckets, load tiers, circuit breakers) may
        #: throttle or shed DNS deliveries to provider nameservers.
        #: Duck-typed like the fault plan: ``admit_dns(addr, query,
        #: region)`` returns None to admit or a verdict with
        #: ``response`` / ``outcome`` / ``latency_ms``.
        self.traffic_plane: Optional[object] = None
        #: Optional attack plane: active floods open transient outage
        #: windows on the victim's nameservers (DNS) and origins
        #: (HTTP).  Duck-typed: ``admit_dns(addr, query, region)`` /
        #: ``admit_http(addr, host, region)`` return None to admit or
        #: a verdict with ``response`` / ``outcome`` / ``latency_ms``.
        self.attack_plane: Optional[object] = None

    # -- DNS plane ------------------------------------------------------

    def register_dns(self, ip: "IPv4Address | str", server: object) -> None:
        """Bind a unicast DNS server to an address."""
        addr = IPv4Address(ip)
        if addr in self._dns_unicast or addr in self._dns_anycast:
            raise ConfigurationError(f"DNS address already bound: {addr}")
        self._dns_unicast[addr] = server

    def register_dns_anycast(
        self,
        ip: "IPv4Address | str",
        network: AnycastNetwork,
        pop_servers: Dict[str, object],
    ) -> None:
        """Bind an anycast DNS address served by one server per PoP."""
        addr = IPv4Address(ip)
        if addr in self._dns_unicast or addr in self._dns_anycast:
            raise ConfigurationError(f"DNS address already bound: {addr}")
        self._dns_anycast[addr] = _AnycastBinding(network, pop_servers)

    def unregister_dns(self, ip: "IPv4Address | str") -> None:
        """Remove a DNS binding (unicast or anycast)."""
        addr = IPv4Address(ip)
        if self._dns_unicast.pop(addr, None) is None:
            if self._dns_anycast.pop(addr, None) is None:
                raise RoutingError(f"no DNS server bound at {addr}")

    def dns_server_at(
        self, ip: "IPv4Address | str", client_region: Optional[Region] = None
    ) -> Optional[object]:
        """The DNS server a client in ``client_region`` reaches at ``ip``.

        Returns None when nothing listens there (packet disappears into
        the void, like a query to a dark address on the real Internet).
        """
        addr = ip if type(ip) is IPv4Address else IPv4Address(ip)
        server = self._dns_unicast.get(addr)
        if server is not None:
            return server
        binding = self._dns_anycast.get(addr)
        if binding is not None:
            return binding.server_for(client_region)
        return None

    def deliver_dns(
        self,
        ip: "IPv4Address | str",
        query: object,
        client_region: Optional[Region] = None,
    ) -> Delivery:
        """Deliver one DNS query through the (possibly faulty) fabric.

        The fault plan, when installed, rules first: it may drop the
        packet or substitute a synthetic SERVFAIL/REFUSED.  The traffic
        plane's defense stack rules next: an overloaded provider may
        throttle the query or shed it with a synthetic REFUSED.
        Otherwise the query reaches the server bound at ``ip`` (``dark``
        outcome when nothing listens there).
        """
        # Hot path: resolvers pass IPv4Address values already; skip the
        # re-wrapping allocation for those.
        addr = ip if type(ip) is IPv4Address else IPv4Address(ip)
        latency = 0
        plan = self.fault_plan
        if plan is not None:
            verdict = plan.intercept_dns(addr, query, client_region)
            if not verdict.delivered:
                return Delivery(verdict.response, verdict.outcome, verdict.latency_ms)
            latency = verdict.latency_ms
        attacks = self.attack_plane
        if attacks is not None:
            flood = attacks.admit_dns(addr, query, client_region)
            if flood is not None:
                return Delivery(
                    flood.response, flood.outcome, latency + flood.latency_ms
                )
        traffic = self.traffic_plane
        if traffic is not None:
            defense = traffic.admit_dns(addr, query, client_region)
            if defense is not None:
                return Delivery(
                    defense.response,
                    defense.outcome,
                    latency + defense.latency_ms,
                )
        server = self.dns_server_at(addr, client_region)
        if server is None:
            return Delivery(None, "dark", latency)
        return Delivery(server.handle_query(query, client_region), "delivered", latency)

    # -- HTTP plane -------------------------------------------------------

    def register_http(self, ip: "IPv4Address | str", handler: object) -> None:
        """Bind a unicast HTTP listener to an address."""
        addr = IPv4Address(ip)
        if addr in self._http_unicast or addr in self._http_anycast:
            raise ConfigurationError(f"HTTP address already bound: {addr}")
        self._http_unicast[addr] = handler

    def register_http_anycast(
        self,
        ip: "IPv4Address | str",
        network: AnycastNetwork,
        pop_servers: Dict[str, object],
    ) -> None:
        """Bind an anycast HTTP address served by one listener per PoP."""
        addr = IPv4Address(ip)
        if addr in self._http_unicast or addr in self._http_anycast:
            raise ConfigurationError(f"HTTP address already bound: {addr}")
        self._http_anycast[addr] = _AnycastBinding(network, pop_servers)

    def unregister_http(self, ip: "IPv4Address | str") -> None:
        """Remove an HTTP binding."""
        addr = IPv4Address(ip)
        if self._http_unicast.pop(addr, None) is None:
            if self._http_anycast.pop(addr, None) is None:
                raise RoutingError(f"no HTTP listener bound at {addr}")

    def http_handler_at(
        self, ip: "IPv4Address | str", client_region: Optional[Region] = None
    ) -> Optional[object]:
        """The HTTP listener a client reaches at ``ip``, or None."""
        addr = ip if type(ip) is IPv4Address else IPv4Address(ip)
        handler = self._http_unicast.get(addr)
        if handler is not None:
            return handler
        binding = self._http_anycast.get(addr)
        if binding is not None:
            return binding.server_for(client_region)
        return None

    def deliver_http(
        self,
        ip: "IPv4Address | str",
        request: object,
        client_region: Optional[Region] = None,
    ) -> Delivery:
        """Deliver one HTTP request through the (possibly faulty) fabric.

        Mirrors :meth:`deliver_dns`; HTTP faults have no synthetic
        response — a dropped request looks like a connection timeout.
        """
        addr = ip if type(ip) is IPv4Address else IPv4Address(ip)
        latency = 0
        plan = self.fault_plan
        if plan is not None:
            host = getattr(request, "host", None)
            verdict = plan.intercept_http(addr, host, client_region)
            if not verdict.delivered:
                return Delivery(None, verdict.outcome, verdict.latency_ms)
            latency = verdict.latency_ms
        attacks = self.attack_plane
        if attacks is not None:
            host = getattr(request, "host", None)
            flood = attacks.admit_http(addr, host, client_region)
            if flood is not None:
                return Delivery(None, flood.outcome, latency + flood.latency_ms)
        handler = self.http_handler_at(addr, client_region)
        if handler is None:
            return Delivery(None, "dark", latency)
        return Delivery(handler.handle_request(request), "delivered", latency)
