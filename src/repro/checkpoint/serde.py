"""Serialize/restore the study runtime for checkpoint snapshots.

The snapshot carries the *measurement layer's* mutable state only.  The
world itself is never serialized: world dynamics draw exclusively from
label-forked RNG streams and are measurement-independent, so a resumed
process rebuilds the world from (seed, population) and replays
``day_index`` engine days to land on the identical state — then
overlays the measurement state restored here.  The runner verifies the
replayed clock position afterwards; drift means the two processes did
not share a trajectory and the resume is refused.

Everything here round-trips through JSON, with insertion order
preserved wherever order is behaviourally load-bearing (snapshot
domain maps, harvested nameservers, Incapsula canonicals).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.collector import DailySnapshot, DomainSnapshot
from ..core.pipeline import HiddenRecord, PipelineReport
from ..core.status import DpsObservation
from ..core.study import SixWeekStudy, StudyConfig, StudyRuntime
from ..dns.message import Rcode
from ..dns.name import DomainName
from ..dps.portal import ReroutingMethod
from ..errors import CheckpointCorruptError
from ..net.ipaddr import IPv4Address

__all__ = [
    "SERDE_REGISTRY",
    "config_to_dict",
    "report_partial_to_dict",
    "restore_report_partial",
    "serialize_runtime",
    "restore_runtime",
]

#: Every class whose mutable state this module can carry across a
#: checkpoint barrier — either through the object's own
#: ``state_dict``/``restore_state`` pair or through an inline converter
#: below.  The REP063 shard-safety rule checks mutable classes reachable
#: from the study's shard entry points against this list: stateful
#: objects that live across ``run_day`` calls but are absent here would
#: silently lose state on resume.
SERDE_REGISTRY = frozenset({
    # Carried transitively: TrafficPlane.state_dict embeds every
    # bucket level, breaker state, and the adaptive limiter's tier.
    "AdaptiveLimiter",
    # Carried via AttackPlane.state_dict: the schedule (verified, not
    # trusted), attacked-address sets, surge, tallies and counters.
    "AttackPlane",
    "CircuitBreaker",
    "DailySnapshot",
    "DnsClient",
    "DnsRecordCollector",
    "DomainSnapshot",
    "DpsObservation",
    "ExposureTimeline",
    "FaultPlan",
    "FilterPipeline",
    "HiddenRecord",
    "HtmlVerifier",
    "HttpClient",
    "IncapsulaScanner",
    # Carried transitively: RecursiveResolver.state_dict embeds the
    # quarantine roster and the metrics counters.
    "MetricsRegistry",
    "NameserverHarvest",
    "NameserverQuarantine",
    "PipelineReport",
    "RecursiveResolver",
    "StudyConfig",
    "StudyReport",
    "StudyRuntime",
    "TokenBucket",
    "TrafficPlane",
})


def config_to_dict(config: StudyConfig) -> Dict[str, object]:
    """The study config as the manifest's JSON payload."""
    return {
        "warmup_days": config.warmup_days,
        "study_days": config.study_days,
        "scan_every_days": config.scan_every_days,
        "vantage_regions": list(config.vantage_regions),
        "multicdn_flip_threshold": config.multicdn_flip_threshold,
        "run_usage_dynamics": config.run_usage_dynamics,
        "run_residual_scans": config.run_residual_scans,
        "verifier_strictness": config.verifier_strictness,
    }


# -- per-type converters ---------------------------------------------------


def _domain_to_dict(snapshot: DomainSnapshot) -> Dict[str, object]:
    return {
        "day": snapshot.day,
        "www": str(snapshot.www),
        "a": [str(address) for address in snapshot.a_records],
        "cnames": [str(target) for target in snapshot.cnames],
        "ns": [str(target) for target in snapshot.ns_targets],
        "rcode": snapshot.rcode.value,
        "measured": snapshot.measured,
    }


def _domain_from_dict(payload: Dict[str, object]) -> DomainSnapshot:
    return DomainSnapshot(
        day=int(payload["day"]),
        www=DomainName(payload["www"]),
        a_records=tuple(IPv4Address(a) for a in payload["a"]),
        cnames=tuple(DomainName(c) for c in payload["cnames"]),
        ns_targets=tuple(DomainName(n) for n in payload["ns"]),
        rcode=Rcode(payload["rcode"]),
        measured=bool(payload["measured"]),
    )


def _daily_to_dict(snapshot: DailySnapshot) -> Dict[str, object]:
    # The domain map's insertion order is the collection order; keep it.
    return {
        "day": snapshot.day,
        "domains": [_domain_to_dict(d) for d in snapshot.domains.values()],
    }


def _daily_from_dict(payload: Dict[str, object]) -> DailySnapshot:
    daily = DailySnapshot(day=int(payload["day"]))
    for entry in payload["domains"]:
        domain = _domain_from_dict(entry)
        daily.domains[str(domain.www)] = domain
    return daily


def _observation_to_list(www: str, obs: DpsObservation) -> List[object]:
    return [
        www,
        obs.day,
        obs.status,
        obs.provider,
        obs.rerouting.value if obs.rerouting is not None else None,
    ]


def _observation_from_list(entry: List[object]) -> DpsObservation:
    www, day, status, provider, rerouting = entry
    return DpsObservation(
        www=www,
        day=int(day),
        status=status,
        provider=provider,
        rerouting=ReroutingMethod(rerouting) if rerouting is not None else None,
    )


def _pipeline_to_dict(report: PipelineReport) -> Dict[str, object]:
    return {
        "provider": report.provider,
        "week": report.week,
        "retrieved": report.retrieved,
        "dropped_ip_filter": report.dropped_ip_filter,
        "dropped_a_filter": report.dropped_a_filter,
        "hidden": [
            [r.www, r.provider, str(r.address), r.verified_origin, r.reason]
            for r in report.hidden
        ],
    }


def _pipeline_from_dict(payload: Dict[str, object]) -> PipelineReport:
    return PipelineReport(
        provider=payload["provider"],
        week=int(payload["week"]),
        retrieved=int(payload["retrieved"]),
        dropped_ip_filter=int(payload["dropped_ip_filter"]),
        dropped_a_filter=int(payload["dropped_a_filter"]),
        hidden=[
            HiddenRecord(www, provider, IPv4Address(address), bool(verified), reason)
            for www, provider, address, verified, reason in payload["hidden"]
        ],
    )


# -- report (daily-loop partial) -------------------------------------------


def report_partial_to_dict(report) -> Dict[str, object]:
    """The report fields the daily loop accumulates, as JSON primitives.

    This is the payload unit both planes exchange: the checkpoint
    snapshot embeds it per barrier, and a shard worker ships it to the
    coordinator at the end of its slice's campaign.  Derived analyses
    (adoption, pauses, exposure summary, ground truth) are excluded —
    :meth:`SixWeekStudy.finalise` recomputes them from this state.
    """
    return {
        "snapshots": [_daily_to_dict(s) for s in report.snapshots],
        "observations": [
            [_observation_to_list(www, obs) for www, obs in day.items()]
            for day in report.observations
        ],
        "unmeasured_daily_counts": list(report.unmeasured_daily_counts),
        "partial_days": list(report.partial_days),
        "skipped_scan_weeks": list(report.skipped_scan_weeks),
        "partial_scan_weeks": sorted(
            [week, count] for week, count in report.partial_scan_weeks.items()
        ),
        "cloudflare_weekly": [
            _pipeline_to_dict(w) for w in report.cloudflare_weekly
        ],
        "incapsula_weekly": [
            _pipeline_to_dict(w) for w in report.incapsula_weekly
        ],
    }


def restore_report_partial(report, partial: Dict[str, object]) -> None:
    """Overlay a :func:`report_partial_to_dict` payload onto a report."""
    report.snapshots = [_daily_from_dict(s) for s in partial["snapshots"]]
    report.observations = [
        {entry[0]: _observation_from_list(entry) for entry in day}
        for day in partial["observations"]
    ]
    report.unmeasured_daily_counts = [
        int(count) for count in partial["unmeasured_daily_counts"]
    ]
    report.partial_days = [int(day) for day in partial["partial_days"]]
    report.skipped_scan_weeks = [int(w) for w in partial["skipped_scan_weeks"]]
    report.partial_scan_weeks = {
        int(week): int(count)
        for week, count in partial.get("partial_scan_weeks", [])
    }
    report.cloudflare_weekly = [
        _pipeline_from_dict(w) for w in partial["cloudflare_weekly"]
    ]
    report.incapsula_weekly = [
        _pipeline_from_dict(w) for w in partial["incapsula_weekly"]
    ]


# -- runtime ---------------------------------------------------------------


def serialize_runtime(study: SixWeekStudy, runtime: StudyRuntime) -> Dict[str, object]:
    """The barrier snapshot: everything a resumed process must restore.

    Only fields the daily loop *mutates* are captured; everything the
    post-loop analyses derive (adoption, pauses, exposure summary,
    ground truth) is recomputed by :meth:`SixWeekStudy.finalise` on the
    restored state.
    """
    world = study.world
    fault_plan = world.fabric.fault_plan
    traffic_plane = world.fabric.traffic_plane
    attack_plane = world.fabric.attack_plane
    return {
        "clock_now": world.clock.now,
        "day_index": runtime.day_index,
        "study_start_day": runtime.study_start_day,
        "report": report_partial_to_dict(runtime.report),
        "collector": runtime.collector.state_dict(),
        "verifier": runtime.verifier.state_dict(),
        "harvest": runtime.harvest.state_dict(),
        "exposure": runtime.exposure.state_dict(),
        "incap_scanner": (
            runtime.incap_scanner.state_dict()
            if runtime.incap_scanner is not None
            else None
        ),
        "cf_pipeline": (
            runtime.cf_pipeline.state_dict()
            if runtime.cf_pipeline is not None
            else None
        ),
        "incap_pipeline": (
            runtime.incap_pipeline.state_dict()
            if runtime.incap_pipeline is not None
            else None
        ),
        "vantage_clients": [c.state_dict() for c in runtime.vantage_clients],
        "scan_pop_totals": sorted(
            [pop, count] for pop, count in runtime.scan_pop_totals.items()
        ),
        "fault_plan": fault_plan.state_dict() if fault_plan is not None else None,
        "traffic_plane": (
            traffic_plane.state_dict() if traffic_plane is not None else None
        ),
        "attack_plane": (
            attack_plane.state_dict() if attack_plane is not None else None
        ),
    }


def restore_runtime(
    study: SixWeekStudy, runtime: StudyRuntime, state: Dict[str, object]
) -> None:
    """Overlay a barrier snapshot onto a freshly begun runtime.

    ``runtime`` must come from :meth:`SixWeekStudy.begin` on a world
    rebuilt with the checkpoint's inputs and replayed to the snapshot's
    ``day_index`` — this function restores the measurement layer only.
    """
    if int(state["study_start_day"]) != runtime.study_start_day:
        raise CheckpointCorruptError(
            f"replayed world starts its study at day {runtime.study_start_day} "
            f"but the snapshot was taken in a study starting at day "
            f"{state['study_start_day']}"
        )
    runtime.day_index = int(state["day_index"])

    restore_report_partial(runtime.report, state["report"])

    runtime.collector.restore_state(state["collector"])
    runtime.verifier.restore_state(state["verifier"])
    runtime.harvest.restore_state(state["harvest"])
    runtime.exposure.restore_state(state["exposure"])
    _restore_optional(runtime.incap_scanner, state["incap_scanner"], "incap_scanner")
    _restore_optional(runtime.cf_pipeline, state["cf_pipeline"], "cf_pipeline")
    _restore_optional(runtime.incap_pipeline, state["incap_pipeline"], "incap_pipeline")
    clients = runtime.vantage_clients
    saved_clients = state["vantage_clients"]
    if len(clients) != len(saved_clients):
        raise CheckpointCorruptError(
            f"snapshot holds {len(saved_clients)} vantage clients, the "
            f"rebuilt runtime has {len(clients)}"
        )
    for client, saved in zip(clients, saved_clients):
        client.restore_state(saved)
    runtime.scan_pop_totals = {
        pop: int(count) for pop, count in state["scan_pop_totals"]
    }

    fault_state = state["fault_plan"]
    fault_plan = study.world.fabric.fault_plan
    if (fault_state is None) != (fault_plan is None):
        raise CheckpointCorruptError(
            "snapshot and rebuilt world disagree about whether a fault "
            "plan is installed"
        )
    if fault_plan is not None:
        fault_plan.restore_state(fault_state)

    # Old snapshots predate the traffic plane; their runs never had one
    # installed, so a missing key means the same as an explicit None.
    traffic_state = state.get("traffic_plane")
    traffic_plane = study.world.fabric.traffic_plane
    if (traffic_state is None) != (traffic_plane is None):
        raise CheckpointCorruptError(
            "snapshot and rebuilt world disagree about whether a traffic "
            "plane is installed"
        )
    if traffic_plane is not None:
        traffic_plane.restore_state(traffic_state)

    # Likewise attack-free for snapshots predating the attack plane.
    attack_state = state.get("attack_plane")
    attack_plane = study.world.fabric.attack_plane
    if (attack_state is None) != (attack_plane is None):
        raise CheckpointCorruptError(
            "snapshot and rebuilt world disagree about whether an attack "
            "plane is installed"
        )
    if attack_plane is not None:
        attack_plane.restore_state(attack_state)


def _restore_optional(obj: Optional[object], saved: Optional[object], name: str) -> None:
    if (obj is None) != (saved is None):
        raise CheckpointCorruptError(
            f"snapshot and rebuilt runtime disagree about {name!r}; the "
            "resume was given a different residual-scan configuration"
        )
    if obj is not None:
        obj.restore_state(saved)
