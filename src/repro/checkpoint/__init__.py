"""Crash-safe checkpoint/resume plane for the six-week study.

See :mod:`repro.checkpoint.store` for the on-disk format (manifest,
content-hashed snapshots, write-ahead journal), :mod:`.runner` for the
barrier loop and deterministic resume, and :mod:`.killmatrix` for the
crash-at-every-barrier equivalence harness.
"""

from .killmatrix import run_kill_matrix, study_artifact
from .runner import resume_study, run_checkpointed_study
from .serde import config_to_dict, restore_runtime, serialize_runtime
from .store import SCHEMA_VERSION, CheckpointStore, canonical_json, content_hash

__all__ = [
    "SCHEMA_VERSION",
    "CheckpointStore",
    "canonical_json",
    "content_hash",
    "config_to_dict",
    "serialize_runtime",
    "restore_runtime",
    "run_checkpointed_study",
    "resume_study",
    "run_kill_matrix",
    "study_artifact",
]
