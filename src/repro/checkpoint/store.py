"""Durable checkpoint store: manifest, snapshots, write-ahead journal.

A checkpoint directory holds three kinds of files:

``MANIFEST.json``
    The run's identity — schema version, seed, population size, the
    full study config, the fault profile — plus content hashes of the
    config and profile.  A resume against *different* inputs is refused
    loudly (:class:`~repro.errors.CheckpointMismatchError`): silently
    continuing a seed-11 trajectory with seed-12 inputs would produce a
    report that looks valid and is garbage.

``snapshot-NNNN.json``
    The serialized study runtime at barrier ``NNNN``, written atomically
    (tmp + fsync + rename via :mod:`repro.io`) and content-hashed.

``journal.jsonl``
    The write-ahead journal: one line per *committed* barrier, appended
    durably (write + flush + fsync) only after its snapshot is safely on
    disk.  Each record carries its own hash and the manifest hash.  A
    torn final line — the signature of a crash mid-append — is discarded
    on replay; a bad line anywhere *else* means tampering or bit rot and
    raises :class:`~repro.errors.CheckpointCorruptError`.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional

from ..errors import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointMismatchError,
    CheckpointSchemaError,
)
from ..io import append_durable_line, atomic_write_text

__all__ = [
    "SCHEMA_VERSION",
    "canonical_json",
    "content_hash",
    "CheckpointStore",
]

#: Bump on any incompatible change to manifest/journal/snapshot layout.
SCHEMA_VERSION = 1

MANIFEST_NAME = "MANIFEST.json"
JOURNAL_NAME = "journal.jsonl"

#: Journal-record keys covered by ``record_hash`` (everything else).
_RECORD_FIELDS = (
    "barrier",
    "day",
    "clock_now",
    "snapshot",
    "snapshot_hash",
    "manifest_hash",
)


def canonical_json(payload: object) -> str:
    """Byte-stable JSON: sorted keys, no whitespace."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def content_hash(payload: object) -> str:
    """blake2b over the canonical JSON encoding."""
    return hashlib.blake2b(
        canonical_json(payload).encode("utf-8"), digest_size=16
    ).hexdigest()


class CheckpointStore:
    """One checkpoint directory: create fresh or open for resume."""

    def __init__(self, directory: "Path | str", manifest: Dict[str, object]) -> None:
        self.directory = Path(directory)
        self.manifest = manifest
        self.manifest_hash = content_hash(manifest)

    # -- construction --------------------------------------------------

    @classmethod
    def create(
        cls,
        directory: "Path | str",
        *,
        seed: int,
        population: int,
        config: Dict[str, object],
        fault_profile: Optional[str] = None,
        traffic_profile: Optional[str] = None,
        attack_profile: Optional[str] = None,
        shard: Optional[Dict[str, int]] = None,
    ) -> "CheckpointStore":
        """Start a fresh checkpoint directory (refuses to reuse one).

        ``shard`` records the store's position in a sharded campaign —
        ``{"index": i, "count": n}`` for a worker's store, ``{"count": n}``
        for the coordinator's parent directory, ``None`` (the default)
        for a monolithic run.  The identity is checked on resume: a
        worker's slice of the measurements must never be resumed as if
        it covered the whole population, nor vice versa.
        """
        directory = Path(directory)
        if (directory / MANIFEST_NAME).exists():
            raise CheckpointError(
                f"checkpoint directory {directory} already holds a manifest; "
                "resume it (repro resume) or point at a fresh directory"
            )
        directory.mkdir(parents=True, exist_ok=True)
        manifest = {
            "schema_version": SCHEMA_VERSION,
            "seed": int(seed),
            "population": int(population),
            "config": config,
            "config_hash": content_hash(config),
            "fault_profile": fault_profile,
            "profile_hash": content_hash({"fault_profile": fault_profile}),
            "traffic_profile": traffic_profile,
            "attack_profile": attack_profile,
            "shard": shard,
        }
        atomic_write_text(directory / MANIFEST_NAME, canonical_json(manifest) + "\n")
        return cls(directory, manifest)

    @classmethod
    def open(cls, directory: "Path | str") -> "CheckpointStore":
        """Open an existing checkpoint directory for resume."""
        directory = Path(directory)
        manifest_path = directory / MANIFEST_NAME
        if not manifest_path.exists():
            raise CheckpointError(f"no checkpoint manifest at {manifest_path}")
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointCorruptError(
                f"unreadable checkpoint manifest {manifest_path}: {exc}"
            ) from exc
        version = manifest.get("schema_version")
        if version != SCHEMA_VERSION:
            raise CheckpointSchemaError(
                f"checkpoint schema {version!r} is not the supported "
                f"schema {SCHEMA_VERSION}"
            )
        return cls(directory, manifest)

    # -- identity ------------------------------------------------------

    def verify_inputs(
        self,
        *,
        seed: int,
        population: int,
        config: Dict[str, object],
        fault_profile: Optional[str] = None,
        traffic_profile: Optional[str] = None,
        attack_profile: Optional[str] = None,
        shard: Optional[Dict[str, int]] = None,
    ) -> None:
        """Refuse (loudly) to marry this store to different inputs.

        ``shard`` must match the identity recorded at :meth:`create`
        (``None`` for monolithic stores) — manifests written before the
        sharding plane carry no ``shard`` key, which reads back as
        ``None`` and stays resumable monolithically.  Likewise
        ``traffic_profile`` and ``attack_profile``: manifests written
        before those planes read back as ``None`` and stay resumable
        without background load or attacks.
        """
        expected = {
            "seed": int(seed),
            "population": int(population),
            "fault_profile": fault_profile,
            "traffic_profile": traffic_profile,
            "attack_profile": attack_profile,
            "config_hash": content_hash(config),
            "shard": shard,
        }
        for key, value in expected.items():
            recorded = self.manifest.get(key)
            if recorded != value:
                label = "study config" if key == "config_hash" else key
                raise CheckpointMismatchError(
                    f"checkpoint was written for {label}={recorded!r} but the "
                    f"resume supplied {label}={value!r}; a resumed run must "
                    "use the exact inputs of the original"
                )

    # -- journal -------------------------------------------------------

    @property
    def journal_path(self) -> Path:
        return self.directory / JOURNAL_NAME

    def append_barrier(
        self, *, barrier: int, day: int, clock_now: int, state: Dict[str, object]
    ) -> Dict[str, object]:
        """Commit one barrier: snapshot first, then the journal record.

        The ordering is the crash-safety invariant: the snapshot is
        atomically durable *before* its journal record exists, so every
        committed record points at a complete snapshot.  A crash between
        the two leaves an orphan snapshot file, which replay ignores.
        """
        records = self.barriers()
        expected = records[-1]["barrier"] + 1 if records else 0
        if barrier != expected:
            raise CheckpointError(
                f"barrier {barrier} out of order; journal expects {expected}"
            )
        body = canonical_json(state)
        snapshot_name = f"snapshot-{barrier:04d}.json"
        atomic_write_text(self.directory / snapshot_name, body)
        record = {
            "barrier": int(barrier),
            "day": int(day),
            "clock_now": int(clock_now),
            "snapshot": snapshot_name,
            "snapshot_hash": hashlib.blake2b(
                body.encode("utf-8"), digest_size=16
            ).hexdigest(),
            "manifest_hash": self.manifest_hash,
        }
        record["record_hash"] = content_hash({k: record[k] for k in _RECORD_FIELDS})
        append_durable_line(self.journal_path, canonical_json(record))
        return record

    def barriers(self) -> List[Dict[str, object]]:
        """Replay the journal into its committed records.

        A damaged *final* line is the torn tail of a crashed append and
        is silently discarded; damage anywhere earlier raises
        :class:`CheckpointCorruptError`.
        """
        if not self.journal_path.exists():
            return []
        lines = self.journal_path.read_text(encoding="utf-8").splitlines()
        records: List[Dict[str, object]] = []
        for index, line in enumerate(lines):
            is_tail = index == len(lines) - 1
            record = self._parse_record(line, is_tail)
            if record is None:  # torn tail, discarded
                break
            if record["manifest_hash"] != self.manifest_hash:
                raise CheckpointMismatchError(
                    f"journal line {index + 1} was committed under a "
                    "different manifest; this journal does not belong to "
                    "this checkpoint's inputs"
                )
            expected = records[-1]["barrier"] + 1 if records else 0
            if record["barrier"] != expected:
                raise CheckpointCorruptError(
                    f"journal line {index + 1} holds barrier "
                    f"{record['barrier']}, expected {expected}"
                )
            records.append(record)
        return records

    def _parse_record(self, line: str, is_tail: bool) -> Optional[Dict[str, object]]:
        """One journal line → record; None for a discarded torn tail."""
        try:
            record = json.loads(line)
            if not isinstance(record, dict):
                raise ValueError("journal record is not an object")
            payload = {key: record[key] for key in _RECORD_FIELDS}
            if record["record_hash"] != content_hash(payload):
                raise ValueError("record hash mismatch")
        except (ValueError, KeyError, json.JSONDecodeError) as exc:
            if is_tail:
                return None
            raise CheckpointCorruptError(
                f"corrupt journal record before the tail: {exc}"
            ) from exc
        return record

    def latest(self) -> Optional[Dict[str, object]]:
        """The newest committed barrier record, if any."""
        records = self.barriers()
        return records[-1] if records else None

    # -- snapshots -----------------------------------------------------

    def load_snapshot(self, record: Dict[str, object]) -> Dict[str, object]:
        """Load and hash-verify the snapshot a journal record points at."""
        path = self.directory / str(record["snapshot"])
        try:
            body = path.read_bytes()
        except OSError as exc:
            raise CheckpointCorruptError(
                f"journal points at missing snapshot {path}: {exc}"
            ) from exc
        digest = hashlib.blake2b(body, digest_size=16).hexdigest()
        if digest != record["snapshot_hash"]:
            raise CheckpointCorruptError(
                f"snapshot {path.name} hash {digest} does not match the "
                f"journal's {record['snapshot_hash']}; refusing to resume "
                "from a corrupt snapshot"
            )
        return json.loads(body.decode("utf-8"))
