"""The kill matrix: crash at *every* barrier, resume, demand identity.

For each crash mode and each barrier the harness runs a checkpointed
study with a :class:`~repro.faults.crash.CrashPlan` armed at that
barrier, catches the :class:`~repro.errors.SimulatedCrash`, resumes
from the checkpoint directory, and compares the resumed run's E1
(daily collection) and E8 (full report) artifacts byte-for-byte —
canonical JSON — against an uninterrupted reference run.  This is the
same equivalence discipline ``repro chaos`` applies to fault profiles,
pointed at the checkpoint plane itself.

The matrix also exercises the refusal paths on the reference
directory: mismatched seed and profile must raise
:class:`CheckpointMismatchError`, a torn journal tail must be
*tolerated* (resume from the previous barrier, still byte-identical),
and a corrupted snapshot must raise :class:`CheckpointCorruptError`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional

from ..core.export import report_to_dict
from ..core.study import StudyConfig, StudyReport
from ..errors import (
    CheckpointCorruptError,
    CheckpointMismatchError,
    SimulatedCrash,
)
from ..faults.chaos import _collection_artifact, diff_artifacts
from ..faults.crash import CRASH_MODES, CrashPlan
from ..attacks.profiles import ATTACK_PROFILES
from ..faults.profiles import PROFILES
from ..traffic.profiles import TRAFFIC_PROFILES
from .runner import resume_study, run_checkpointed_study
from .store import canonical_json, content_hash

__all__ = ["study_artifact", "run_kill_matrix"]


def study_artifact(report: StudyReport) -> Dict[str, object]:
    """The byte-compared artifact: E1 daily collections + E8 report."""
    return {
        "e1": [_collection_artifact(snapshot) for snapshot in report.snapshots],
        "e8": report_to_dict(report),
    }


def run_kill_matrix(
    base_dir: "Path | str",
    *,
    population: int,
    seed: int,
    config: Optional[StudyConfig] = None,
    fault_profile: Optional[str] = None,
    traffic_profile: Optional[str] = None,
    attack_profile: Optional[str] = None,
    shards: int = 1,
    shard_mode: str = "inline",
) -> Dict[str, object]:
    """Crash at every barrier in every mode; assert resumed == reference.

    Returns the divergence-report payload: one case per (mode, barrier)
    with its verdict and dotted-path divergences, the refusal-path
    checks, and an overall ``passed`` flag.

    With ``shards > 1`` the whole matrix runs through the sharded
    execution plane: the reference is an uninterrupted sharded campaign,
    every crash case arms the plan in *all* lockstep workers, and the
    refusal-path mutations target shard 0's store (one damaged worker
    must be enough to stop — or, for the torn tail, be tolerated by —
    the campaign resume).
    """
    base = Path(base_dir)
    config = config if config is not None else StudyConfig()
    inputs = dict(
        population=population,
        seed=seed,
        config=config,
        fault_profile=fault_profile,
        traffic_profile=traffic_profile,
        attack_profile=attack_profile,
    )

    if shards <= 1:
        def launch(directory, crash_plan, run_inputs):
            return run_checkpointed_study(
                directory, crash_plan=crash_plan, **run_inputs
            )

        def reopen(directory, run_inputs):
            return resume_study(directory, **run_inputs)

        def store_dir(directory):
            return Path(directory)
    else:
        # Imported lazily: repro.shard.runner itself imports this
        # package's serde/store modules, and the package __init__ pulls
        # in this module — a top-level import would close the cycle.
        from ..shard.runner import (
            resume_sharded_study,
            run_sharded_study,
            shard_directory,
        )

        def launch(directory, crash_plan, run_inputs):
            return run_sharded_study(
                checkpoint_dir=directory,
                crash_plan=crash_plan,
                shard_count=shards,
                mode=shard_mode,
                **run_inputs,
            )

        def reopen(directory, run_inputs):
            return resume_sharded_study(directory, mode=shard_mode, **run_inputs)

        def store_dir(directory):
            return shard_directory(directory, 0, shards)

    reference_report = launch(base / "reference", None, inputs)
    reference = study_artifact(reference_report)
    reference_bytes = canonical_json(reference)

    cases: List[Dict[str, object]] = []
    for mode in CRASH_MODES:
        # before-commit at barrier 0 is meaningless: there is no prior
        # committed barrier to fall back to (CrashPlan refuses it too).
        first = 1 if mode == "before-commit" else 0
        for barrier in range(first, config.study_days + 1):
            cases.append(
                _crash_case(
                    base / f"crash-{mode}-{barrier:04d}",
                    mode,
                    barrier,
                    inputs,
                    reference,
                    reference_bytes,
                    launch,
                    reopen,
                )
            )

    refusals = _refusal_checks(
        base / "reference",
        inputs,
        reference_bytes,
        reopen,
        store_dir(base / "reference"),
    )

    return {
        "schema_version": 1,
        "population": population,
        "seed": seed,
        "study_days": config.study_days,
        "fault_profile": fault_profile,
        "traffic_profile": traffic_profile,
        "attack_profile": attack_profile,
        "shards": shards,
        "reference_hash": content_hash(reference),
        "cases": cases,
        "refusals": refusals,
        "passed": all(c["passed"] for c in cases)
        and all(r["passed"] for r in refusals),
    }


def _crash_case(
    directory: Path,
    mode: str,
    barrier: int,
    inputs: Dict[str, object],
    reference: Dict[str, object],
    reference_bytes: str,
    launch,
    reopen,
) -> Dict[str, object]:
    case: Dict[str, object] = {"mode": mode, "barrier": barrier}
    plan = CrashPlan(at_barrier=barrier, mode=mode)
    try:
        launch(directory, plan, inputs)
    except SimulatedCrash:
        case["crashed"] = True
    else:
        case.update(crashed=False, passed=False, divergences=["crash never fired"])
        return case
    resumed = study_artifact(reopen(directory, inputs))
    identical = canonical_json(resumed) == reference_bytes
    case["passed"] = identical
    case["divergences"] = [] if identical else diff_artifacts(reference, resumed)
    return case


def _refusal_checks(
    reference_dir: Path,
    inputs: Dict[str, object],
    reference_bytes: str,
    reopen,
    store_dir: Path,
) -> List[Dict[str, object]]:
    """Mutate the (already harvested) reference directory and make sure
    every refusal path refuses — and the torn-tail path tolerates.

    ``store_dir`` is where the journal and snapshots actually live: the
    reference directory itself for a monolithic run, shard 0's
    subdirectory for a sharded campaign.
    """
    checks: List[Dict[str, object]] = []

    wrong_seed = dict(inputs, seed=int(inputs["seed"]) + 1)
    checks.append(
        _expect_refusal(
            "mismatched-seed",
            reference_dir,
            wrong_seed,
            CheckpointMismatchError,
            reopen,
        )
    )
    other_profile = sorted(
        name for name in PROFILES if name != inputs["fault_profile"]
    )[0]
    wrong_profile = dict(inputs, fault_profile=other_profile)
    checks.append(
        _expect_refusal(
            "mismatched-profile",
            reference_dir,
            wrong_profile,
            CheckpointMismatchError,
            reopen,
        )
    )
    other_traffic = sorted(
        name for name in TRAFFIC_PROFILES if name != inputs["traffic_profile"]
    )[0]
    wrong_traffic = dict(inputs, traffic_profile=other_traffic)
    checks.append(
        _expect_refusal(
            "mismatched-traffic",
            reference_dir,
            wrong_traffic,
            CheckpointMismatchError,
            reopen,
        )
    )
    other_attack = sorted(
        name for name in ATTACK_PROFILES if name != inputs["attack_profile"]
    )[0]
    wrong_attack = dict(inputs, attack_profile=other_attack)
    checks.append(
        _expect_refusal(
            "mismatched-attacks",
            reference_dir,
            wrong_attack,
            CheckpointMismatchError,
            reopen,
        )
    )

    # Torn tail: a partial record (crash mid-append) must be discarded,
    # resuming from the previous barrier and still matching byte-for-byte.
    journal = store_dir / "journal.jsonl"
    with open(journal, "a", encoding="utf-8") as handle:  # repro: allow[REP031] -- deliberately simulating a torn, non-durable append
        handle.write('{"barrier": 9999, "truncated')
    try:
        resumed = study_artifact(reopen(reference_dir, inputs))
        identical = canonical_json(resumed) == reference_bytes
        checks.append(
            {
                "check": "torn-journal-tail",
                "passed": identical,
                "detail": "resumed past torn tail"
                if identical
                else "resumed run diverged",
            }
        )
    except Exception as exc:  # repro: allow[REP021] -- any unexpected exception is recorded as a failing verdict, not propagated
        checks.append(
            {
                "check": "torn-journal-tail",
                "passed": False,
                "detail": f"resume raised {type(exc).__name__}: {exc}",
            }
        )

    # Corrupted snapshot: flip one byte in the newest snapshot body.
    snapshots = sorted(store_dir.glob("snapshot-*.json"))
    target = snapshots[-1]
    body = bytearray(target.read_bytes())
    body[len(body) // 2] ^= 0xFF
    target.write_bytes(bytes(body))  # repro: allow[REP031] -- deliberately corrupting a snapshot to prove the refusal path
    checks.append(
        _expect_refusal(
            "corrupt-snapshot",
            reference_dir,
            inputs,
            CheckpointCorruptError,
            reopen,
        )
    )
    return checks


def _expect_refusal(
    name: str,
    directory: Path,
    inputs: Dict[str, object],
    expected: type,
    reopen,
) -> Dict[str, object]:
    try:
        reopen(directory, inputs)
    except expected as exc:
        return {"check": name, "passed": True, "detail": str(exc)}
    except Exception as exc:  # repro: allow[REP021] -- wrong-exception-type is recorded as a failing verdict, not propagated
        return {
            "check": name,
            "passed": False,
            "detail": f"raised {type(exc).__name__} instead of {expected.__name__}",
        }
    return {
        "check": name,
        "passed": False,
        "detail": f"resume succeeded; expected {expected.__name__}",
    }
