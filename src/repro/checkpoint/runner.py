"""Checkpointed execution of the six-week study.

The study runs between *checkpoint barriers*: barrier 0 sits after
warm-up and before study day 0, barrier ``k`` after study day ``k-1``
completes, up to barrier ``study_days`` just before the post-loop
analyses.  At each barrier the runtime is serialized, the snapshot is
made atomically durable, and a journal record commits it — then the
next day runs.

A crash anywhere leaves the journal ending at the last *committed*
barrier.  :func:`resume_study` rebuilds the world from the manifest's
inputs, replays the world's (measurement-independent) dynamics up to
the snapshot's day, overlays the measurement state, verifies the
replayed clock landed exactly where the snapshot says it should, and
drives the remaining barriers.  The kill-matrix harness asserts the
result is byte-identical to an uninterrupted run, for a crash at every
barrier in both crash modes.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from ..core.study import SixWeekStudy, StudyConfig, StudyReport, StudyRuntime
from ..errors import CheckpointCorruptError, CheckpointError, SimulationError
from ..faults.crash import CrashPlan
from ..world.config import WorldConfig
from ..world.internet import SimulatedInternet
from .serde import config_to_dict, restore_runtime, serialize_runtime
from .store import CheckpointStore

__all__ = ["run_checkpointed_study", "resume_study"]


def run_checkpointed_study(
    checkpoint_dir: "Path | str",
    *,
    population: int,
    seed: int,
    config: Optional[StudyConfig] = None,
    fault_profile: Optional[str] = None,
    traffic_profile: Optional[str] = None,
    attack_profile: Optional[str] = None,
    crash_plan: Optional[CrashPlan] = None,
) -> StudyReport:
    """Run the study from scratch, committing a barrier per day.

    ``crash_plan`` injects a deterministic :class:`SimulatedCrash` at a
    chosen barrier — the kill-matrix's fault kind.  The checkpoint
    directory must be fresh; an existing run is resumed with
    :func:`resume_study`, never silently overwritten.
    """
    config = config if config is not None else StudyConfig()
    store = CheckpointStore.create(
        checkpoint_dir,
        seed=seed,
        population=population,
        config=config_to_dict(config),
        fault_profile=fault_profile,
        traffic_profile=traffic_profile,
        attack_profile=attack_profile,
    )
    study, runtime = _begin(
        population, seed, config, fault_profile, traffic_profile, attack_profile
    )
    return _drive(store, study, runtime, crash_plan, latest_barrier=-1)


def resume_study(
    checkpoint_dir: "Path | str",
    *,
    population: int,
    seed: int,
    config: Optional[StudyConfig] = None,
    fault_profile: Optional[str] = None,
    traffic_profile: Optional[str] = None,
    attack_profile: Optional[str] = None,
    crash_plan: Optional[CrashPlan] = None,
) -> StudyReport:
    """Continue a crashed run on the exact deterministic trajectory.

    Refuses loudly when the supplied inputs differ from the manifest
    (:class:`CheckpointMismatchError`), when a snapshot or mid-journal
    record is damaged (:class:`CheckpointCorruptError`), or when the
    replayed world's clock drifts from the snapshot's recorded position
    — drift means world dynamics were not reproduced and the resumed
    measurements would silently diverge.
    """
    config = config if config is not None else StudyConfig()
    store = CheckpointStore.open(checkpoint_dir)
    store.verify_inputs(
        seed=seed,
        population=population,
        config=config_to_dict(config),
        fault_profile=fault_profile,
        traffic_profile=traffic_profile,
        attack_profile=attack_profile,
    )
    record = store.latest()
    if record is None:
        raise CheckpointError(
            f"journal at {store.journal_path} holds no committed barriers; "
            "nothing to resume — rerun from scratch"
        )
    state = store.load_snapshot(record)

    study, runtime = _begin(
        population, seed, config, fault_profile, traffic_profile, attack_profile
    )
    # Replay the world's measurement-independent dynamics day by day up
    # to the snapshot's position, then overlay the measurement state.
    for _ in range(int(state["day_index"])):
        study.world.engine.run_day()
    restore_runtime(study, runtime, state)
    try:
        study.world.clock.require(int(state["clock_now"]))
    except SimulationError as exc:
        raise CheckpointCorruptError(
            f"replayed world clock drifted from the snapshot: {exc}"
        ) from exc
    return _drive(
        store, study, runtime, crash_plan, latest_barrier=int(record["barrier"])
    )


# -- internals -------------------------------------------------------------


def _begin(
    population: int,
    seed: int,
    config: StudyConfig,
    fault_profile: Optional[str],
    traffic_profile: Optional[str] = None,
    attack_profile: Optional[str] = None,
) -> "tuple[SixWeekStudy, StudyRuntime]":
    """Deterministically rebuild world + study and begin the campaign.

    The fault profile installs *after* warm-up, so its day-windowed
    rules are relative to the same clock day on every rebuild — this is
    what makes a resumed run's fault schedule identical to the
    original's.  The traffic and attack planes install the same way:
    post-warmup, so a resumed run regenerates the identical background
    load and attack schedule before the snapshot overlays (and, for the
    attack plane, cross-checks) the planes' exact state.
    """
    world = SimulatedInternet(WorldConfig(population_size=population, seed=seed))
    study = SixWeekStudy(world, config)
    runtime = study.begin()
    if fault_profile is not None:
        world.install_faults(fault_profile)
    if traffic_profile is not None:
        world.install_traffic(traffic_profile)
    if attack_profile is not None:
        world.install_attacks(attack_profile)
    return study, runtime


def _drive(
    store: CheckpointStore,
    study: SixWeekStudy,
    runtime: StudyRuntime,
    crash_plan: Optional[CrashPlan],
    latest_barrier: int,
) -> StudyReport:
    """The barrier loop shared by fresh and resumed runs.

    Barriers already committed (``<= latest_barrier``) are never
    re-appended: a resume picks the loop up mid-stride without touching
    the journal's history.
    """
    study_days = study.config.study_days
    while True:
        barrier = runtime.day_index
        if barrier > latest_barrier:
            _commit_barrier(store, study, runtime, crash_plan, barrier)
            latest_barrier = barrier
        if barrier >= study_days:
            break
        study.run_day(runtime)
    return study.finalise(runtime)


def _commit_barrier(
    store: CheckpointStore,
    study: SixWeekStudy,
    runtime: StudyRuntime,
    crash_plan: Optional[CrashPlan],
    barrier: int,
) -> None:
    if crash_plan is not None:
        crash_plan.fire_if_due(barrier, "before-commit")
    state = serialize_runtime(study, runtime)
    store.append_barrier(
        barrier=barrier,
        day=study.world.clock.day,
        clock_now=study.world.clock.now,
        state=state,
    )
    if crash_plan is not None:
        crash_plan.fire_if_due(barrier, "after-commit")
