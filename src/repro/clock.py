"""Simulation clock.

The paper's experiments are organised around *days* (daily DNS collection
for six weeks) and *weeks* (weekly residual-resolution sweeps).  The
:class:`SimulationClock` provides a single logical time source measured in
seconds since simulation epoch, with day/week helpers, so that DNS TTLs,
pause windows, and purge horizons all share one notion of time.

Nothing in the library reads the wall clock.
"""

from __future__ import annotations

from .errors import SimulationError

__all__ = ["SimulationClock", "SECONDS_PER_DAY", "SECONDS_PER_HOUR", "DAYS_PER_WEEK"]

SECONDS_PER_HOUR = 3600
SECONDS_PER_DAY = 24 * SECONDS_PER_HOUR
DAYS_PER_WEEK = 7


class SimulationClock:
    """Monotonic logical clock, measured in seconds since epoch.

    The clock only moves forward; attempts to rewind raise
    :class:`~repro.errors.SimulationError` so that accidental time travel
    (a classic source of impossible cache states) fails loudly.
    """

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise SimulationError(f"clock cannot start before epoch: {start}")
        self._now = int(start)

    # -- reading ------------------------------------------------------

    @property
    def now(self) -> int:
        """Current time in seconds since simulation epoch."""
        return self._now

    @property
    def day(self) -> int:
        """Current day index (day 0 starts at epoch)."""
        return self._now // SECONDS_PER_DAY

    @property
    def week(self) -> int:
        """Current week index (week 0 starts at epoch)."""
        return self.day // DAYS_PER_WEEK

    def seconds_into_day(self) -> int:
        """Seconds elapsed since the current day began."""
        return self._now % SECONDS_PER_DAY

    # -- advancing ----------------------------------------------------

    def advance(self, seconds: int) -> int:
        """Move time forward by ``seconds`` and return the new time."""
        if seconds < 0:
            raise SimulationError(f"cannot advance clock by {seconds} seconds")
        self._now += int(seconds)
        return self._now

    def advance_to(self, timestamp: int) -> int:
        """Move time forward to an absolute ``timestamp``."""
        if timestamp < self._now:
            raise SimulationError(
                f"cannot rewind clock from {self._now} to {timestamp}"
            )
        self._now = int(timestamp)
        return self._now

    def advance_days(self, days: int) -> int:
        """Move time forward by a whole number of days."""
        return self.advance(days * SECONDS_PER_DAY)

    def advance_to_day(self, day: int) -> int:
        """Move to 00:00 of the given day index."""
        return self.advance_to(day * SECONDS_PER_DAY)

    # -- verification -------------------------------------------------

    def require(self, timestamp: int) -> None:
        """Assert the clock sits exactly at ``timestamp``.

        The resume path replays world dynamics and then checks the
        rebuilt clock against the checkpointed position; any drift means
        the replay did not retrace the original trajectory and must fail
        loudly before measurement continues.
        """
        if self._now != int(timestamp):
            raise SimulationError(
                f"clock at {self._now}, expected {int(timestamp)}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimulationClock(now={self._now}, day={self.day})"
