"""Retry policy: bounded attempts, exponential backoff, timeout budget.

The paper's measurement ran on the live Internet, where queries time
out, nameservers throttle, and vantage points fall over.  Every network
client in the simulation (:class:`~repro.dns.client.DnsClient`, the
:class:`~repro.dns.resolver.RecursiveResolver` transport, and
:class:`~repro.web.http.HttpClient`) retries transient failures under a
:class:`RetryPolicy` before giving up, so a fault-injected run recovers
exactly the data a fault-free run measures — up to the point where the
fault rate exceeds the retry budget and the measurement layer must
degrade explicitly instead.

Backoff jitter draws from an injected :class:`~repro.rng.SeededRng`
stream, never ambient randomness, and all elapsed time is *accounting
only* — simulated milliseconds charged against the per-destination
budget.  Nothing here advances the world's
:class:`~repro.clock.SimulationClock`, so installing a fault plan can
never shift TTL expiry or purge horizons.

This module deliberately imports nothing from :mod:`repro.dns` or
:mod:`repro.net` so the transport layers can import it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..rng import SeededRng, stable_hash

__all__ = ["RetryPolicy", "RetryBudget", "default_retry_rng"]


def default_retry_rng(label: str) -> SeededRng:
    """A private, reproducible jitter stream for one client instance.

    Clients that are not handed a forked stream by their owner fall back
    to this: the stream depends only on the label, so every run draws
    the same jitter sequence.  Jitter is consumed *only* when a retry
    actually happens, so a fault-free run never touches it.
    """
    return SeededRng(stable_hash("retry-jitter", label))


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and a timeout budget.

    Attributes
    ----------
    max_attempts:
        Total delivery attempts per destination (first try included).
        Must be at least 1; 1 disables retrying entirely.
    base_backoff_ms:
        Backoff before the second attempt; doubles (by
        ``backoff_multiplier``) for each later attempt.
    backoff_multiplier:
        Exponential growth factor for successive backoffs.
    jitter_fraction:
        Each backoff is stretched by up to this fraction, drawn from the
        client's seeded jitter stream (0 disables jitter).
    budget_ms:
        Per-destination budget in simulated milliseconds.  Injected
        latency and backoff sleep both charge against it; once spent, no
        further attempts are made even if ``max_attempts`` remain.
    """

    max_attempts: int = 4
    base_backoff_ms: int = 200
    backoff_multiplier: float = 2.0
    jitter_fraction: float = 0.5
    budget_ms: int = 10_000

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_backoff_ms < 0 or self.budget_ms <= 0:
            raise ConfigurationError("backoff and budget must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ConfigurationError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}"
            )
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ConfigurationError(
                f"jitter_fraction out of range: {self.jitter_fraction}"
            )

    @classmethod
    def no_retry(cls) -> "RetryPolicy":
        """A policy that makes exactly one attempt."""
        return cls(max_attempts=1)

    def backoff_ms(self, attempt: int, rng: Optional[SeededRng] = None) -> int:
        """Backoff charged before attempt ``attempt + 1`` (1-indexed)."""
        if attempt < 1:
            raise ConfigurationError(f"attempt must be >= 1, got {attempt}")
        base = self.base_backoff_ms * self.backoff_multiplier ** (attempt - 1)
        if rng is not None and self.jitter_fraction > 0:
            base += base * self.jitter_fraction * rng.random()
        return int(base)

    def budget(self) -> "RetryBudget":
        """A fresh per-destination budget tracker."""
        return RetryBudget(self.budget_ms)


class RetryBudget:  # repro: allow[REP063] -- one budget per delivery attempt; exhausted and dropped within a single query
    """Tracks simulated milliseconds spent against one destination."""

    __slots__ = ("limit_ms", "spent_ms")

    def __init__(self, limit_ms: int) -> None:
        self.limit_ms = int(limit_ms)
        self.spent_ms = 0

    def charge(self, ms: int) -> None:
        """Record ``ms`` simulated milliseconds of latency or sleep."""
        if ms > 0:
            self.spent_ms += int(ms)

    @property
    def exhausted(self) -> bool:
        """True once the destination's budget has been spent."""
        return self.spent_ms >= self.limit_ms

    def snapshot(self) -> Tuple[int, int]:
        """The budget's balance as ``(limit_ms, spent_ms)``."""
        return (self.limit_ms, self.spent_ms)

    def restore(self, state: "Tuple[int, int] | Sequence[int]") -> None:
        """Reinstate a balance captured by :meth:`snapshot`.

        Restoring mid-flight keeps every later :meth:`charge` /
        :attr:`exhausted` decision identical to the uninterrupted
        budget's — the property the checkpoint plane's round-trip tests
        pin down.
        """
        limit_ms, spent_ms = state
        if limit_ms <= 0 or spent_ms < 0:
            raise ConfigurationError(
                f"invalid budget state: limit={limit_ms}, spent={spent_ms}"
            )
        self.limit_ms = int(limit_ms)
        self.spent_ms = int(spent_ms)

    @classmethod
    def from_snapshot(
        cls, state: "Tuple[int, int] | Sequence[int]"
    ) -> "RetryBudget":
        """Build a budget directly from a :meth:`snapshot` value."""
        budget = cls(int(state[0]))
        budget.restore(state)
        return budget
