"""The ``repro chaos`` harness: same seed, one faulty run, diff the rest.

Builds two identical worlds from one seed, runs the E1 (daily
collection) and E8 (residual scan + filter pipeline) workloads on both
— one fault-free, one under a named fault profile installed after
warm-up — and diffs the measured artifacts field by field.

For profiles that stay inside the retry budget
(``expect_equivalence``), any divergence is a correctness bug in the
retry/fault machinery and the run fails.  For budget-exceeding
profiles the run fails only if the harness *didn't* degrade gracefully:
an exception escaped, or nothing was marked unmeasured even though
faults clearly bit.

The payload is what ``repro chaos`` serialises to
``CHAOS_<profile>.json``.  Everything here is deterministic — no wall
clock, no ambient randomness — so a chaos report is reproducible
byte for byte.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.collector import DnsRecordCollector
from ..core.htmlverify import HtmlVerifier
from ..core.matching import ProviderMatcher
from ..core.pipeline import FilterPipeline
from ..core.residual_scan import CloudflareScanner, IncapsulaScanner, NameserverHarvest
from ..net.geo import PAPER_VANTAGE_REGIONS
from ..obs.metrics import MetricsRegistry
from ..world import SimulatedInternet, WorldConfig
from .profiles import FaultProfile, profile as lookup_profile

__all__ = ["run_chaos", "diff_artifacts"]

#: Divergences listed in the payload before truncation.
_MAX_DIVERGENCES = 25

#: Extra engine days driven after the planes install when an attack
#: campaign rides along, so the first strikes land (and their emergency
#: waves fire) before the workloads measure — mid-campaign, never
#: pre-campaign.  Both worlds drive the identical extra days.
_ATTACK_SOAK_DAYS = 9


def diff_artifacts(
    baseline: Dict[str, object], chaotic: Dict[str, object]
) -> List[str]:
    """Dotted paths where two artifact trees differ (sorted, truncated)."""
    paths: List[str] = []
    _diff_into(baseline, chaotic, "", paths)
    paths.sort()
    if len(paths) > _MAX_DIVERGENCES:
        extra = len(paths) - _MAX_DIVERGENCES
        paths = paths[:_MAX_DIVERGENCES] + [f"... and {extra} more"]
    return paths


def _diff_into(a: object, b: object, prefix: str, out: List[str]) -> None:
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            path = f"{prefix}.{key}" if prefix else str(key)
            if key not in a:
                out.append(f"{path} (only in faulty run)")
            elif key not in b:
                out.append(f"{path} (only in baseline)")
            else:
                _diff_into(a[key], b[key], path, out)
        return
    if a != b:
        out.append(f"{prefix}: {a!r} != {b!r}")


def _collection_artifact(snapshot) -> Dict[str, object]:
    return {
        str(domain.www): {
            "a": sorted(str(ip) for ip in domain.a_records),
            "cnames": [str(c) for c in domain.cnames],
            "ns": sorted(str(t) for t in domain.ns_targets),
            "rcode": str(domain.rcode),
            "measured": domain.measured,
        }
        for domain in snapshot
    }


def _pipeline_artifact(report) -> Dict[str, object]:
    return {
        "retrieved": report.retrieved,
        "dropped_ip_filter": report.dropped_ip_filter,
        "dropped_a_filter": report.dropped_a_filter,
        "hidden": sorted(
            (record.www, str(record.address)) for record in report.hidden
        ),
        "verified": sorted(report.verified_websites()),
    }


def _run_workloads(
    population: int,
    seed: int,
    warmup_days: int,
    fault_profile: Optional[FaultProfile],
    traffic: Optional[str] = None,
    attacks: Optional[str] = None,
) -> Tuple[Dict[str, object], Dict[str, object]]:
    """One world, E1 + E8, returning (artifacts, observability).

    ``traffic`` and ``attacks`` install on *both* the baseline and the
    faulty world (the caller passes the same values twice), so the diff
    keeps isolating the fault profile's effect: under load and under
    attack, an equivalence profile must still produce byte-identical
    artifacts.  With an attack campaign the world soaks a few extra
    days after install so the workloads measure mid-campaign.
    """
    world = SimulatedInternet(
        WorldConfig(population_size=population, seed=seed)
    )
    world.engine.run_days(warmup_days)
    metrics = MetricsRegistry()
    if traffic is not None:
        world.install_traffic(traffic)
    if attacks is not None:
        world.install_attacks(attacks)
        world.engine.run_days(_ATTACK_SOAK_DAYS)
    if fault_profile is not None:
        world.install_faults(fault_profile, metrics)
    hostnames = [str(site.www) for site in world.population]

    # E1: one cache-purged daily collection pass.
    resolver = world.make_resolver(metrics=metrics)
    collector = DnsRecordCollector(resolver)
    snapshot = collector.collect(hostnames, day=world.clock.day)
    artifacts: Dict[str, object] = {"e1": _collection_artifact(snapshot)}

    # E8: harvest, Cloudflare sweep, Incapsula tracker, filter pipeline.
    matcher = ProviderMatcher(world.specs, world.routeviews)
    verifier = HtmlVerifier(
        world.http_client(PAPER_VANTAGE_REGIONS[0], metrics=metrics)
    )
    harvest = NameserverHarvest()
    harvest.ingest([snapshot])
    ns_ips = harvest.resolve_addresses(world.make_resolver(metrics=metrics))

    e8: Dict[str, object] = {
        "harvested_nameservers": sorted(str(n) for n in harvest.hostnames),
        "nameserver_addresses": sorted(str(ip) for ip in ns_ips),
    }
    if ns_ips and "cloudflare" in world.providers:
        scanner = CloudflareScanner(
            ns_ips,
            [world.dns_client(region, metrics=metrics)
             for region in PAPER_VANTAGE_REGIONS],
            rng=world.rng.fork("chaos-e8-scan"),
            metrics=metrics,
        )
        retrieved = scanner.scan(hostnames)
        e8["cloudflare_retrieved"] = sorted(
            (record.www, sorted(str(ip) for ip in record.addresses))
            for record in retrieved
        )
        pipeline = FilterPipeline(
            world.provider("cloudflare").prefixes,
            world.make_resolver(metrics=metrics),
            verifier,
        )
        e8["cloudflare"] = _pipeline_artifact(
            pipeline.run(retrieved, "cloudflare", week=0)
        )
    if "incapsula" in world.providers:
        incap = IncapsulaScanner(world.make_resolver(metrics=metrics), matcher)
        incap.ingest([snapshot])
        incap_records = incap.scan()
        incap_pipeline = FilterPipeline(
            world.provider("incapsula").prefixes,
            world.make_resolver(metrics=metrics),
            verifier,
        )
        e8["incapsula"] = _pipeline_artifact(
            incap_pipeline.run(incap_records, "incapsula", week=0)
        )
    artifacts["e8"] = e8

    unmeasured = snapshot.unmeasured_count
    observability = {
        "counters": metrics.snapshot(),
        "unmeasured_sites": unmeasured,
        "quarantined_nameservers": [
            address for address, _, _ in resolver.quarantine.snapshot()
        ],
    }
    return artifacts, observability


def run_chaos(
    profile_name: str,
    population: int = 400,
    seed: int = 2018,
    warmup_days: int = 21,
    traffic: Optional[str] = None,
    attacks: Optional[str] = None,
) -> Dict[str, object]:
    """Run the chaos comparison and return the report payload.

    ``passed`` is False when an equivalence profile diverged, or when a
    budget-exceeding profile failed to degrade explicitly (faults were
    injected, results diverged, yet nothing was marked unmeasured or
    quarantined and no query was given up on).  ``traffic`` / ``attacks``
    put *both* worlds under the same background load and attack
    campaign, proving the fault check composes with the other planes.
    """
    fault_profile = lookup_profile(profile_name)
    baseline_artifacts, _ = _run_workloads(
        population, seed, warmup_days, None, traffic=traffic, attacks=attacks
    )
    chaotic_artifacts, observability = _run_workloads(
        population, seed, warmup_days, fault_profile,
        traffic=traffic, attacks=attacks,
    )
    divergences = diff_artifacts(baseline_artifacts, chaotic_artifacts)
    identical = not divergences

    counters = observability["counters"]
    faults_injected = sum(
        count
        for name, count in counters.items()
        if name.startswith("faults.")
        and not name.endswith(("latency_ms", "latency_injections", "suppressed"))
    )
    degraded_explicitly = (
        observability["unmeasured_sites"] > 0
        or bool(observability["quarantined_nameservers"])
        or counters.get("resolver.gave_up", 0) > 0
        or counters.get("http.unanswered", 0) > 0
        or counters.get("client.unanswered", 0) > 0
    )
    if fault_profile.expect_equivalence:
        passed = identical
    else:
        passed = identical or degraded_explicitly or faults_injected == 0

    return {
        "profile": fault_profile.name,
        "description": fault_profile.description,
        "expect_equivalence": fault_profile.expect_equivalence,
        "population": population,
        "seed": seed,
        "warmup_days": warmup_days,
        "traffic": traffic,
        "attacks": attacks,
        "identical": identical,
        "divergences": divergences,
        "faults_injected": faults_injected,
        "retries": {
            "resolver": counters.get("resolver.retries", 0),
            "client": counters.get("client.retries", 0),
            "http": counters.get("http.retries", 0),
        },
        "unmeasured_sites": observability["unmeasured_sites"],
        "quarantined_nameservers": observability["quarantined_nameservers"],
        "counters": counters,
        "passed": passed,
    }
