"""Nameserver quarantine with scheduled re-probe.

When the resolver exhausts its retry budget against a nameserver, the
server goes into quarantine: subsequent resolutions prefer the
remaining servers of the zone and only fall back to a quarantined one
when nothing else is left.  Each quarantined server carries a re-probe
time (simulation clock, not wall clock); once it passes, the server is
eligible again and a single success releases it.

The quarantine is measurement-layer state — it never touches the fault
plan or the fabric, it only reorders which servers the resolver tries
first.  That keeps fault-free runs byte-identical: with no faults, no
server is ever quarantined and the ordering is untouched.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..clock import SECONDS_PER_HOUR, SimulationClock
from ..errors import ConfigurationError
from ..net.ipaddr import IPv4Address

__all__ = ["NameserverQuarantine"]


class NameserverQuarantine:
    """Tracks unreachable nameservers and schedules their re-probe.

    Parameters
    ----------
    clock:
        The simulation clock used to stamp quarantine entries and decide
        when a re-probe is due.
    reprobe_after_s:
        Seconds a server stays quarantined before the next resolution
        is allowed to probe it again (default: six simulated hours).
    """

    def __init__(
        self,
        clock: SimulationClock,
        reprobe_after_s: int = 6 * SECONDS_PER_HOUR,
    ) -> None:
        if reprobe_after_s <= 0:
            raise ConfigurationError(
                f"reprobe_after_s must be positive, got {reprobe_after_s}"
            )
        self._clock = clock
        self.reprobe_after_s = int(reprobe_after_s)
        #: address -> (quarantined-at, re-probe-due) in sim seconds.
        self._entries: Dict[IPv4Address, Tuple[int, int]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, address: IPv4Address) -> bool:
        return address in self._entries

    def quarantine(self, address: IPv4Address) -> None:
        """Put a server in quarantine (or push its re-probe time out)."""
        now = self._clock.now
        self._entries[address] = (
            self._entries.get(address, (now, 0))[0],
            now + self.reprobe_after_s,
        )

    def release(self, address: IPv4Address) -> None:
        """Remove a server from quarantine after a successful probe."""
        self._entries.pop(address, None)

    def reprobe_due(self, address: IPv4Address) -> bool:
        """Whether a quarantined server's re-probe time has passed."""
        entry = self._entries.get(address)
        return entry is not None and self._clock.now >= entry[1]

    def partition(
        self, servers: Sequence[IPv4Address]
    ) -> Tuple[List[IPv4Address], List[IPv4Address]]:
        """Split ``servers`` into (try-first, last-resort) in given order.

        Healthy servers and quarantined servers whose re-probe is due go
        in the first list; still-quarantined ones in the second.  The
        resolver walks the first list, then the second, so a fully
        quarantined zone is still probed rather than abandoned.
        """
        preferred: List[IPv4Address] = []
        deferred: List[IPv4Address] = []
        now = self._clock.now
        for server in servers:
            entry = self._entries.get(server)
            if entry is None or now >= entry[1]:
                preferred.append(server)
            else:
                deferred.append(server)
        return preferred, deferred

    def snapshot(self) -> List[Tuple[str, int, int]]:
        """Current entries as (address, quarantined-at, re-probe-due),
        sorted by address for deterministic reporting."""
        return sorted(
            (str(addr), at, due) for addr, (at, due) in self._entries.items()
        )

    def restore(self, entries: Iterable[Tuple[str, int, int]]) -> None:
        """Reinstate entries captured by :meth:`snapshot`.

        Round-trips exactly: ``restore(snapshot())`` leaves every future
        :meth:`partition` / :meth:`reprobe_due` decision identical, which
        is what lets a resumed study keep deprioritising the same
        servers until their original re-probe times.
        """
        restored: Dict[IPv4Address, Tuple[int, int]] = {}
        for address, quarantined_at, due in entries:
            if due < quarantined_at or quarantined_at < 0:
                raise ConfigurationError(
                    f"invalid quarantine entry for {address}: "
                    f"at={quarantined_at}, due={due}"
                )
            restored[IPv4Address(address)] = (int(quarantined_at), int(due))
        self._entries = restored

    def quarantined_addresses(self) -> List[IPv4Address]:
        """Addresses currently quarantined, in sorted order."""
        return sorted(self._entries, key=str)

    @staticmethod
    def merge_snapshots(
        snapshots: Iterable[Iterable[Tuple[str, int, int]]],
    ) -> List[Tuple[str, int, int]]:
        """Union per-shard quarantine rosters into one canonical roster.

        Each study shard resolves only its own slice, so each resolver
        quarantines only the servers *it* exhausted a budget against;
        the campaign-level roster is their union.  When two shards
        quarantined the same address, the merged entry keeps the
        earliest quarantined-at and the latest re-probe-due — the same
        entry a single resolver would hold after both failures.  Sorted
        by address, like :meth:`snapshot`, so the merge is independent
        of shard order.
        """
        merged: Dict[str, Tuple[int, int]] = {}
        for entries in snapshots:
            for address, quarantined_at, due in entries:
                previous = merged.get(address)
                if previous is None:
                    merged[address] = (int(quarantined_at), int(due))
                else:
                    merged[address] = (
                        min(previous[0], int(quarantined_at)),
                        max(previous[1], int(due)),
                    )
        return sorted((addr, at, due) for addr, (at, due) in merged.items())
