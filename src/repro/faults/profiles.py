"""Named fault profiles for the chaos harness and the ``repro chaos`` CLI.

A :class:`FaultProfile` is a reproducible recipe: given a built world
and a metrics registry it constructs a :class:`~repro.faults.plan.FaultPlan`
whose randomness is forked from the world's root RNG (forks are
stateless with respect to the parent, so installing a plan never
perturbs world dynamics).  ``build`` is called at *install* time —
after warm-up, right before measurement starts — so day-windowed rules
are expressed relative to the clock's current day.

Profiles marked ``expect_equivalence`` keep every fault inside the
retry budget (``max_consecutive_failures`` strictly below the default
policy's ``max_attempts``, and only retryable fault kinds), so a study
run under them must produce byte-identical artifacts to a fault-free
run.  The rest deliberately exceed the budget to exercise graceful
degradation (UNMEASURED observations, quarantine, partial days).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..clock import DAYS_PER_WEEK
from ..errors import ConfigurationError
from ..obs.metrics import MetricsRegistry
from .plan import FaultKind, FaultPlan, FaultRule

__all__ = ["FaultProfile", "PROFILES", "profile"]

#: Consecutive-failure cap used by equivalence profiles.  Strictly below
#: the default RetryPolicy.max_attempts (4): every query gets through on
#: some attempt, so artifacts match the fault-free run bit for bit.
_EQUIVALENCE_CAP = 3


@dataclass(frozen=True)
class FaultProfile:
    """A named, reproducible fault-plan recipe."""

    name: str
    description: str
    #: Whether a study under this profile must equal the fault-free run.
    expect_equivalence: bool
    _builder: Callable[[object, MetricsRegistry], List[FaultRule]]
    #: Plan-level consecutive-failure cap (None removes the guarantee).
    max_consecutive_failures: "int | None" = None

    def build(self, world: object, metrics: MetricsRegistry) -> FaultPlan:
        """Materialise the plan against a built world, at install time."""
        return FaultPlan(
            rng=world.rng.fork(f"fault-plan-{self.name}"),
            clock=world.clock,
            rules=self._builder(world, metrics),
            max_consecutive_failures=self.max_consecutive_failures,
            metrics=metrics,
            name=self.name,
        )


def _lossy_default(world: object, metrics: MetricsRegistry) -> List[FaultRule]:
    return [
        FaultRule(FaultKind.LATENCY, latency_ms=40, plane="both"),
        FaultRule(FaultKind.LOSS, probability=0.12, plane="dns"),
        FaultRule(FaultKind.LOSS, probability=0.10, plane="http"),
        FaultRule(FaultKind.SERVFAIL, probability=0.08, plane="dns"),
    ]


def _heavy_loss(world: object, metrics: MetricsRegistry) -> List[FaultRule]:
    return [
        FaultRule(FaultKind.LATENCY, latency_ms=120, plane="both"),
        FaultRule(FaultKind.LOSS, probability=0.55, plane="dns"),
        FaultRule(FaultKind.LOSS, probability=0.45, plane="http"),
        FaultRule(FaultKind.SERVFAIL, probability=0.30, plane="dns"),
    ]


def _ns_outage(world: object, metrics: MetricsRegistry) -> List[FaultRule]:
    """Cloudflare's customer-facing nameservers go dark for one week."""
    fleet = frozenset(world.provider("cloudflare").customer_fleet.all_addresses())
    start = world.clock.day + 2 * DAYS_PER_WEEK
    return [
        FaultRule(
            FaultKind.OUTAGE,
            plane="dns",
            addresses=fleet,
            from_day=start,
            until_day=start + DAYS_PER_WEEK,
        ),
        FaultRule(FaultKind.LOSS, probability=0.05, plane="dns"),
    ]


def _rate_limited(world: object, metrics: MetricsRegistry) -> List[FaultRule]:
    """Cloudflare's nameserver fleet throttles direct probing hard."""
    fleet = frozenset(world.provider("cloudflare").customer_fleet.all_addresses())
    return [
        FaultRule(
            FaultKind.RATE_LIMIT, plane="dns", addresses=fleet, max_per_day=8
        ),
    ]


def _attack_collateral(world: object, metrics: MetricsRegistry) -> List[FaultRule]:
    """Ambient collateral damage while a DDoS campaign is in flight.

    Transit congestion in the three weeks after install — the window
    where the ``campaign`` attack profile lands its strikes — so
    ``repro chaos --profile attack-collateral --attacks campaign``
    stresses the degradation paths with floods and congested transit at
    once.  Loss rates sit above the retry budget on purpose, and the
    window opens on the install day itself so the chaos workloads
    (which measure immediately after install) sit inside it.
    """
    start = world.clock.day
    until = start + 3 * DAYS_PER_WEEK
    return [
        FaultRule(
            FaultKind.LATENCY,
            latency_ms=250,
            plane="both",
            from_day=start,
            until_day=until,
        ),
        FaultRule(
            FaultKind.LOSS,
            probability=0.45,
            plane="dns",
            from_day=start,
            until_day=until,
        ),
        FaultRule(
            FaultKind.LOSS,
            probability=0.35,
            plane="http",
            from_day=start,
            until_day=until,
        ),
    ]


def _regional_blackout(world: object, metrics: MetricsRegistry) -> List[FaultRule]:
    """The Sydney vantage loses connectivity for two weeks mid-study."""
    start = world.clock.day + DAYS_PER_WEEK
    return [
        FaultRule(
            FaultKind.OUTAGE,
            plane="both",
            region="sydney",
            from_day=start,
            until_day=start + 2 * DAYS_PER_WEEK,
        ),
    ]


PROFILES: Dict[str, FaultProfile] = {
    p.name: p
    for p in [
        FaultProfile(
            "lossy-default",
            "moderate loss + transient SERVFAIL + latency, all inside "
            "the retry budget (equivalence guaranteed)",
            expect_equivalence=True,
            _builder=_lossy_default,
            max_consecutive_failures=_EQUIVALENCE_CAP,
        ),
        FaultProfile(
            "heavy-loss",
            "loss and SERVFAIL rates far above the retry budget; the "
            "study must degrade, not crash",
            expect_equivalence=False,
            _builder=_heavy_loss,
        ),
        FaultProfile(
            "ns-outage",
            "Cloudflare's customer nameserver fleet dark for week 2 of "
            "the study window",
            expect_equivalence=False,
            _builder=_ns_outage,
        ),
        FaultProfile(
            "rate-limited",
            "per-nameserver daily query caps on the Cloudflare fleet",
            expect_equivalence=False,
            _builder=_rate_limited,
        ),
        FaultProfile(
            "attack-collateral",
            "three weeks of congested transit (latency + heavy loss) in "
            "the window where the 'campaign' attack profile strikes; the "
            "study must degrade, not crash",
            expect_equivalence=False,
            _builder=_attack_collateral,
        ),
        FaultProfile(
            "regional-blackout",
            "two-week total outage for clients in the Sydney region",
            expect_equivalence=False,
            _builder=_regional_blackout,
        ),
    ]
}


def profile(name: str) -> FaultProfile:
    """Look up a profile by name."""
    try:
        return PROFILES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown fault profile {name!r}; "
            f"known: {', '.join(sorted(PROFILES))}"
        ) from None
