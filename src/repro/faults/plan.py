"""Deterministic fault injection for the network fabric.

A :class:`FaultPlan` sits between the
:class:`~repro.net.fabric.NetworkFabric` and the servers it routes to.
On every DNS or HTTP delivery the fabric asks the plan for a
:class:`FaultVerdict`; the plan consults its ordered :class:`FaultRule`
list and either lets the packet through (possibly with added latency),
drops it, or substitutes a synthetic failure response (transient
``SERVFAIL``, lame-delegation ``REFUSED``).

Everything is deterministic by construction:

* probabilistic faults draw from an injected
  :class:`~repro.rng.SeededRng` stream — delivery order is itself
  deterministic, so the whole fault sequence replays bit-for-bit;
* time-scoped faults (outage windows, per-day rate limits) read the
  injected :class:`~repro.clock.SimulationClock`, never the wall clock;
* ``max_consecutive_failures`` caps how many times in a row the plan
  may fail deliveries to one destination.  A plan whose cap is below a
  client's :class:`~repro.faults.retry.RetryPolicy` ``max_attempts`` is
  *within the retry budget*: every query is guaranteed to get through
  on some attempt, so measured artifacts are byte-identical to a
  fault-free run (the ``repro chaos`` equivalence check).

Every injection lands in a :class:`~repro.obs.metrics.MetricsRegistry`
counter (``faults.dns.loss``, ``faults.http.outage``, ...) so recovery
overhead is observable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..clock import SimulationClock
from ..dns.message import DnsQuery, DnsResponse
from ..dns.name import DomainName
from ..errors import ConfigurationError
from ..net.geo import Region
from ..net.ipaddr import IPv4Address, IPv4Prefix
from ..obs.metrics import MetricsRegistry
from ..rng import SeededRng

__all__ = ["FaultKind", "FaultRule", "FaultVerdict", "FaultPlan"]


class FaultKind(enum.Enum):
    """The failure modes the plan can inject."""

    #: Packet disappears; the client sees a timeout (``None``).
    LOSS = "loss"
    #: Delivery succeeds but is charged extra simulated latency.
    LATENCY = "latency"
    #: Transient server failure: a ``SERVFAIL`` response (DNS only).
    SERVFAIL = "servfail"
    #: Lame delegation: the server refuses the query (DNS only).
    LAME = "lame"
    #: Destination answers at most N deliveries per simulated day,
    #: dropping the rest (per-nameserver throttling).
    RATE_LIMIT = "rate-limit"
    #: Scheduled unavailability window: every delivery dropped.
    OUTAGE = "outage"
    #: Process death at the Nth checkpoint barrier.  Not a fabric fault:
    #: a :class:`FaultRule` refuses this kind — it belongs to a
    #: :class:`~repro.faults.crash.CrashPlan` consulted by the
    #: checkpoint runner, not to delivery interception.
    CRASH = "crash"

    def __str__(self) -> str:
        return self.value


#: Verdict outcomes that mean the packet never reached a server.
_DROP_OUTCOMES = frozenset({"loss", "outage", "rate-limited"})
#: Fault kinds whose injection counts toward the consecutive-failure cap
#: (deterministic faults like outages are *meant* to exceed the budget).
_CAPPED_KINDS = frozenset({FaultKind.LOSS, FaultKind.SERVFAIL, FaultKind.LAME})


@dataclass(frozen=True)
class FaultRule:
    """One fault source, scoped by address, zone, region, and time.

    A rule applies to a delivery only when every populated scope field
    matches: ``addresses``/``prefix`` against the destination, ``zone``
    against the query name (DNS only; suffix match), ``region`` against
    the client's region name, and ``from_day``/``until_day`` (half-open,
    in simulated days) against the clock.  ``probability`` gates the
    injection per matching delivery; scheduled faults use 1.0.
    """

    kind: FaultKind
    probability: float = 1.0
    #: Extra simulated milliseconds charged to the client's retry budget
    #: (LATENCY rules; the packet still goes through).
    latency_ms: int = 0
    #: RATE_LIMIT only: deliveries answered per destination per sim-day.
    max_per_day: Optional[int] = None
    #: Which delivery plane the rule applies to: "dns", "http", "both".
    plane: str = "dns"
    addresses: Optional[FrozenSet[IPv4Address]] = None
    prefix: Optional[IPv4Prefix] = None
    zone: Optional[DomainName] = None
    region: Optional[str] = None
    from_day: Optional[int] = None
    until_day: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind is FaultKind.CRASH:
            raise ConfigurationError(
                "CRASH is a checkpoint-barrier fault; schedule it with "
                "repro.faults.crash.CrashPlan, not a fabric FaultRule"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"fault probability out of range: {self.probability}"
            )
        if self.plane not in ("dns", "http", "both"):
            raise ConfigurationError(f"unknown fault plane: {self.plane!r}")
        if self.kind is FaultKind.RATE_LIMIT and not self.max_per_day:
            raise ConfigurationError("RATE_LIMIT rules need max_per_day")
        if self.kind is FaultKind.LATENCY and self.latency_ms <= 0:
            raise ConfigurationError("LATENCY rules need latency_ms > 0")
        if self.kind in (FaultKind.SERVFAIL, FaultKind.LAME) and self.plane != "dns":
            raise ConfigurationError(f"{self.kind} is a DNS-only fault")

    def matches(
        self,
        plane: str,
        address: IPv4Address,
        qname: Optional[DomainName],
        region: Optional[Region],
        day: int,
    ) -> bool:
        """Whether this rule's scope covers one delivery."""
        if self.plane != "both" and self.plane != plane:
            return False
        if self.addresses is not None and address not in self.addresses:
            return False
        if self.prefix is not None and address not in self.prefix:
            return False
        if self.zone is not None:
            if qname is None or not qname.is_subdomain_of(self.zone):
                return False
        if self.region is not None:
            if region is None or region.name != self.region:
                return False
        if self.from_day is not None and day < self.from_day:
            return False
        if self.until_day is not None and day >= self.until_day:
            return False
        return True


@dataclass(frozen=True)
class FaultVerdict:
    """What the plan decided for one delivery."""

    #: "deliver", "loss", "outage", "rate-limited", "servfail", "lame".
    outcome: str
    #: Synthetic failure response (injected SERVFAIL/REFUSED), if any.
    response: Optional[DnsResponse] = None
    #: Simulated milliseconds charged to the caller's retry budget.
    latency_ms: int = 0

    @property
    def delivered(self) -> bool:
        """True when the packet should reach the real server."""
        return self.outcome == "deliver"

    @property
    def dropped(self) -> bool:
        """True when the packet vanished (timeout at the client)."""
        return self.outcome in _DROP_OUTCOMES


_DELIVER = FaultVerdict(outcome="deliver")


class FaultPlan:
    """An ordered rule list evaluated on every fabric delivery.

    Parameters
    ----------
    rng:
        Seeded stream for probabilistic faults (fork it from the world's
        root so installing a plan never perturbs world dynamics).
    clock:
        The simulation clock, for windows and per-day rate limits.
    rules:
        Evaluated in order; the first rule that injects a failure wins.
        LATENCY rules are cumulative and never terminate evaluation.
    max_consecutive_failures:
        Plan-wide cap on consecutive probabilistic failures (loss /
        servfail / lame) per destination and plane.  Once a destination
        has failed that many deliveries in a row, the next probabilistic
        injection is suppressed and the packet goes through.  ``None``
        removes the guarantee (outage/rate-limit faults always bypass
        the cap — they model scheduled unavailability).
    metrics:
        Registry receiving ``faults.<plane>.<kind>`` injection counters.
    """

    def __init__(
        self,
        rng: SeededRng,
        clock: SimulationClock,
        rules: Sequence[FaultRule],
        max_consecutive_failures: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
        name: str = "custom",
    ) -> None:
        if max_consecutive_failures is not None and max_consecutive_failures < 1:
            raise ConfigurationError(
                "max_consecutive_failures must be >= 1 when set"
            )
        self._rng = rng
        self._clock = clock
        self.rules: List[FaultRule] = list(rules)
        self.max_consecutive_failures = max_consecutive_failures
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.name = name
        #: (plane, address) -> consecutive capped failures.
        self._consecutive: Dict[Tuple[str, IPv4Address], int] = {}
        #: (rule index, address) -> (sim day, deliveries seen today).
        self._rate_counts: Dict[Tuple[int, IPv4Address], Tuple[int, int]] = {}
        # Precomputed at install time (rules are fixed for the plan's
        # lifetime; a resume rebuilds the plan from the profile): days
        # outside every rule's window skip rule evaluation entirely on
        # the delivery hot path.  With only day-scoped rules installed,
        # most study days never touch the rule list.
        self._dateless_rules = any(
            rule.from_day is None and rule.until_day is None
            for rule in self.rules
        )
        self._day_windows: List[Tuple[Optional[int], Optional[int]]] = [
            (rule.from_day, rule.until_day)
            for rule in self.rules
            if rule.from_day is not None or rule.until_day is not None
        ]
        self._day_active: Dict[int, bool] = {}

    # -- delivery hooks -------------------------------------------------

    def intercept_dns(
        self,
        address: IPv4Address,
        query: DnsQuery,
        region: Optional[Region],
    ) -> FaultVerdict:
        """Verdict for one DNS delivery to ``address``."""
        return self._intercept("dns", address, query, region)

    def intercept_http(
        self,
        address: IPv4Address,
        host: Optional[DomainName],
        region: Optional[Region],
    ) -> FaultVerdict:
        """Verdict for one HTTP delivery to ``address``."""
        return self._intercept("http", address, None, region, host=host)

    # -- evaluation -----------------------------------------------------

    def _intercept(
        self,
        plane: str,
        address: IPv4Address,
        query: Optional[DnsQuery],
        region: Optional[Region],
        host: Optional[DomainName] = None,
    ) -> FaultVerdict:
        if not self.rules:
            return _DELIVER
        day = self._clock.day
        if not self._rules_active_on(day):
            # No rule's window covers today: preserve the exact
            # bookkeeping of a full scan that matched nothing (the
            # consecutive-failure streak still resets on a clean
            # delivery) without consulting any rule.
            if self._consecutive:
                self._consecutive.pop((plane, address), None)
            return _DELIVER
        qname = query.qname if query is not None else host
        latency = 0
        suppressed = False
        failure: Optional[Tuple[FaultRule, int]] = None
        for index, rule in enumerate(self.rules):
            if not rule.matches(plane, address, qname, region, day):
                continue
            if rule.kind is FaultKind.LATENCY:
                latency += rule.latency_ms
                continue
            if rule.kind is FaultKind.OUTAGE:
                failure = (rule, index)
                break
            if rule.kind is FaultKind.RATE_LIMIT:
                if self._over_rate_limit(index, rule, address, day):
                    failure = (rule, index)
                    break
                continue
            # Probabilistic loss / servfail / lame.  Once the
            # consecutive-failure cap suppresses one of these, the whole
            # delivery is immune to every *other* capped rule too —
            # otherwise a second probabilistic rule could re-fail the
            # attempt the cap just guaranteed, and a query could exhaust
            # its full retry budget under an equivalence profile.
            if rule.probability > 0 and self._rng.bernoulli(rule.probability):
                if suppressed or self._cap_reached(plane, address):
                    self.metrics.incr(f"faults.{plane}.suppressed")
                    self._consecutive[(plane, address)] = 0
                    suppressed = True
                    continue
                failure = (rule, index)
                break
        if failure is None:
            self._consecutive.pop((plane, address), None)
            if latency:
                self.metrics.incr(f"faults.{plane}.latency_injections")
                self.metrics.incr(f"faults.{plane}.latency_ms", latency)
            return (
                FaultVerdict(outcome="deliver", latency_ms=latency)
                if latency
                else _DELIVER
            )
        rule, _ = failure
        if rule.kind in _CAPPED_KINDS:
            key = (plane, address)
            self._consecutive[key] = self._consecutive.get(key, 0) + 1
        outcome = self._outcome_of(rule.kind)
        self.metrics.incr(f"faults.{plane}.{rule.kind.value.replace('-', '_')}")
        response = None
        if query is not None:
            if rule.kind is FaultKind.SERVFAIL:
                response = DnsResponse.servfail(query)
            elif rule.kind is FaultKind.LAME:
                response = DnsResponse.refused(query)
        return FaultVerdict(outcome=outcome, response=response, latency_ms=latency)

    def _rules_active_on(self, day: int) -> bool:
        """Whether any rule's day window covers ``day`` (memoized)."""
        if self._dateless_rules:
            return True
        active = self._day_active.get(day)
        if active is None:
            active = any(
                (lo is None or day >= lo) and (hi is None or day < hi)
                for lo, hi in self._day_windows
            )
            self._day_active[day] = active
        return active

    def _cap_reached(self, plane: str, address: IPv4Address) -> bool:
        cap = self.max_consecutive_failures
        if cap is None:
            return False
        return self._consecutive.get((plane, address), 0) >= cap

    def _over_rate_limit(
        self, index: int, rule: FaultRule, address: IPv4Address, day: int
    ) -> bool:
        key = (index, address)
        window_day, count = self._rate_counts.get(key, (day, 0))
        if window_day != day:
            count = 0
        count += 1
        self._rate_counts[key] = (day, count)
        assert rule.max_per_day is not None
        return count > rule.max_per_day

    @staticmethod
    def _outcome_of(kind: FaultKind) -> str:
        if kind is FaultKind.RATE_LIMIT:
            return "rate-limited"
        return kind.value

    # -- checkpoint support ---------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """The plan's mutable state as JSON-compatible primitives.

        Rules are *not* serialized — they are rebuilt deterministically
        from the profile at resume time; what must survive is the RNG
        position, the consecutive-failure counters, and the per-day rate
        windows, so the resumed fault sequence replays bit-for-bit.
        """
        return {
            "rng": self._rng.getstate(),
            "consecutive": sorted(
                [plane, str(address), count]
                for (plane, address), count in self._consecutive.items()
            ),
            "rate_counts": sorted(
                [index, str(address), day, count]
                for (index, address), (day, count) in self._rate_counts.items()
            ),
            "metrics": self.metrics.snapshot(),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Reinstate mutable state captured by :meth:`state_dict`."""
        self._rng.setstate(state["rng"])
        self._consecutive = {
            (plane, IPv4Address(address)): int(count)
            for plane, address, count in state["consecutive"]
        }
        self._rate_counts = {
            (int(index), IPv4Address(address)): (int(day), int(count))
            for index, address, day, count in state["rate_counts"]
        }
        self.metrics.restore(state["metrics"])
