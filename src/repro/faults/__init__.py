"""Deterministic fault injection and the retry machinery to survive it.

``repro.faults`` gives the simulation the one property the live
Internet forced on the paper's measurement: the substrate can break.
A :class:`FaultPlan` injects loss, latency, transient ``SERVFAIL``,
lame delegations, rate limiting, and outage windows at the
:class:`~repro.net.fabric.NetworkFabric`; a :class:`RetryPolicy`
threads bounded, seeded-jitter retries through every network client;
and a :class:`NameserverQuarantine` deprioritises servers that stop
responding until their scheduled re-probe.

The chaos harness (two same-seed runs, one faulty, diffed artifact by
artifact) lives in :mod:`repro.faults.chaos`; it is imported lazily by
the CLI because it depends on the world/study layers above this
package.  See ``docs/ROBUSTNESS.md`` for the full model.
"""

from .crash import CRASH_MODES, CrashPlan
from .plan import FaultKind, FaultPlan, FaultRule, FaultVerdict
from .profiles import PROFILES, FaultProfile
from .quarantine import NameserverQuarantine
from .retry import RetryBudget, RetryPolicy, default_retry_rng

__all__ = [
    "CRASH_MODES",
    "CrashPlan",
    "FaultKind",
    "FaultPlan",
    "FaultRule",
    "FaultVerdict",
    "FaultProfile",
    "PROFILES",
    "NameserverQuarantine",
    "RetryBudget",
    "RetryPolicy",
    "default_retry_rng",
]
