"""Deterministic process-death injection at checkpoint barriers.

The kill matrix needs to cut a study short at a *known, reproducible*
point — "die at the Nth checkpoint barrier" — which no fabric-level
:class:`~repro.faults.plan.FaultRule` can express: barriers are a
control-plane event, not a packet delivery.  A :class:`CrashPlan` is
the :data:`~repro.faults.plan.FaultKind.CRASH` counterpart consulted by
the checkpoint runner at every barrier; when its barrier comes up it
raises :class:`~repro.errors.SimulatedCrash`, abandoning all in-memory
state exactly as ``kill -9`` would.

Two timings matter, because they exercise the two halves of the
write-ahead contract:

* ``after-commit`` — die right *after* the barrier's journal record is
  fsynced.  Resume must pick up from this very barrier.
* ``before-commit`` — die right *before* the commit.  The journal still
  ends at the previous barrier; resume must redo the lost day and
  arrive at the same trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError, SimulatedCrash
from .plan import FaultKind

__all__ = ["CrashPlan", "CRASH_MODES"]

#: Valid crash timings relative to the barrier's journal commit.
CRASH_MODES = ("after-commit", "before-commit")


@dataclass(frozen=True)
class CrashPlan:
    """Kill the run at one checkpoint barrier.

    ``at_barrier`` counts barriers the way the runner does: barrier 0 is
    post-warmup / pre-day-0, barrier *k* follows the completion of study
    day *k - 1*.  ``before-commit`` at barrier 0 is rejected — nothing
    was ever journalled, so there is no checkpoint to resume from and
    the "crash" is just a run that never started.
    """

    at_barrier: int
    mode: str = "after-commit"

    #: The fault kind this plan realises (for symmetry with FaultRule).
    kind = FaultKind.CRASH

    def __post_init__(self) -> None:
        if self.at_barrier < 0:
            raise ConfigurationError(
                f"at_barrier must be >= 0, got {self.at_barrier}"
            )
        if self.mode not in CRASH_MODES:
            raise ConfigurationError(
                f"unknown crash mode {self.mode!r}; "
                f"known: {', '.join(CRASH_MODES)}"
            )
        if self.mode == "before-commit" and self.at_barrier == 0:
            raise ConfigurationError(
                "before-commit crash at barrier 0 leaves no checkpoint "
                "to resume from; use after-commit or a later barrier"
            )

    def fire_if_due(self, barrier: int, phase: str) -> None:
        """Raise :class:`SimulatedCrash` when (barrier, phase) matches."""
        if barrier == self.at_barrier and phase == self.mode:
            raise SimulatedCrash(
                f"simulated crash {self.mode} at checkpoint barrier {barrier}"
            )
