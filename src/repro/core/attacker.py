"""The adversary of the threat model (§III, Fig. 1).

Two pieces:

* :class:`ResidualResolutionAttacker` — discovers a protected site's
  origin by querying the *previous* DPS provider's nameservers directly
  (NS-based rerouting) or by resolving a previously-collected canonical
  name (CNAME-based rerouting), then filters out answers that are just
  provider edge addresses.
* :class:`DdosSimulator` — launches a volumetric flood at an address.
  If the address belongs to a DPS platform, the traffic is rerouted
  through scrubbing centres and absorbed; if it is a raw origin
  address, the origin's uplink saturates and legitimate traffic dies —
  the protection of the *current* DPS never enters the path, which is
  precisely how residual resolution nullifies it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..dns.client import DnsClient
from ..dns.message import Rcode
from ..dns.name import DomainName
from ..dns.records import RecordType
from ..dns.resolver import RecursiveResolver
from ..dps.provider import DpsProvider
from ..net.ipaddr import IPv4Address
from ..net.traffic import CapacityTarget, TrafficFlow
from .matching import ProviderMatcher

__all__ = ["DiscoveryResult", "ResidualResolutionAttacker", "AttackOutcome", "DdosSimulator"]


@dataclass(frozen=True)
class DiscoveryResult:
    """What the attacker learned about a target."""

    www: str
    candidate_origins: tuple
    queried_nameservers: int

    @property
    def succeeded(self) -> bool:
        """True when at least one non-DPS address was obtained."""
        return bool(self.candidate_origins)


class ResidualResolutionAttacker:
    """Implements the attacker model of §III-B."""

    def __init__(self, client: DnsClient, matcher: ProviderMatcher) -> None:
        self._client = client
        self._matcher = matcher

    def probe_nameservers(
        self,
        www: "DomainName | str",
        nameserver_ips: Sequence["IPv4Address | str"],
        max_attempts: Optional[int] = None,
    ) -> DiscoveryResult:
        """NS-based path: ask the previous provider's nameservers directly."""
        hostname = DomainName(www)
        candidates: List[IPv4Address] = []
        attempts = 0
        for ns_ip in nameserver_ips:
            if max_attempts is not None and attempts >= max_attempts:
                break
            attempts += 1
            response = self._client.query(ns_ip, hostname, RecordType.A)
            if response is None or response.rcode is not Rcode.NOERROR:
                continue
            for record in response.answers:
                if record.rtype is not RecordType.A:
                    continue
                if self._matcher.in_provider_ranges(record.address):
                    continue  # just an edge address — no exposure
                if record.address not in candidates:
                    candidates.append(record.address)
            if candidates:
                break
        return DiscoveryResult(str(hostname), tuple(candidates), attempts)

    def probe_canonical(
        self,
        www: "DomainName | str",
        canonical: "DomainName | str",
        resolver: RecursiveResolver,
    ) -> DiscoveryResult:
        """CNAME-based path: resolve a previously-collected canonical."""
        resolver.purge_cache()
        result = resolver.resolve(DomainName(canonical), RecordType.A)
        candidates = tuple(
            address
            for address in result.addresses
            if not self._matcher.in_provider_ranges(address)
        )
        return DiscoveryResult(str(DomainName(www)), candidates, 1)


@dataclass(frozen=True)
class AttackOutcome:
    """The result of one volumetric attack."""

    target: IPv4Address
    path: str  # "scrubbed" or "direct"
    origin_saturated: bool
    origin_availability: float
    attack_gbps_reaching_origin: float

    @property
    def attack_succeeded(self) -> bool:
        """True when the origin went down (availability below half)."""
        return self.origin_availability < 0.5


class DdosSimulator:
    """Launches floods and reports what survives."""

    def __init__(
        self,
        providers: Dict[str, DpsProvider],
        matcher: ProviderMatcher,
    ) -> None:
        self._providers = providers
        self._matcher = matcher

    def attack(
        self,
        target: "IPv4Address | str",
        attack_gbps: float,
        legitimate_gbps: float = 1.0,
        origin_capacity_gbps: float = 10.0,
        bot_regions: Optional[Sequence] = None,
    ) -> AttackOutcome:
        """Flood ``target`` and compute the origin's fate.

        A DPS-owned target address reroutes everything through the
        owner's scrubbing network first (Fig. 1a); a raw address hits
        the origin uplink directly (Fig. 1b).  ``bot_regions`` places
        the botnet geographically: a concentrated botnet lands on one
        anycast catchment and can overwhelm a single scrubbing centre
        at a fraction of the network's aggregate capacity.
        """
        address = IPv4Address(target)
        flow = TrafficFlow(legitimate_gbps=legitimate_gbps, attack_gbps=attack_gbps)
        origin = CapacityTarget("origin-uplink", origin_capacity_gbps)
        provider_name = self._matcher.a_match(address)
        if provider_name is not None and provider_name in self._providers:
            provider = self._providers[provider_name]
            if bot_regions:
                scrubbed = provider.absorb_attack_from(flow, list(bot_regions))
            else:
                scrubbed = provider.absorb_attack(flow)
            delivery = origin.offer(scrubbed.forwarded)
            return AttackOutcome(
                target=address,
                path="scrubbed",
                origin_saturated=delivery.saturated,
                origin_availability=delivery.availability
                * scrubbed.legitimate_survival,
                attack_gbps_reaching_origin=delivery.delivered_attack_gbps,
            )
        delivery = origin.offer(flow)
        return AttackOutcome(
            target=address,
            path="direct",
            origin_saturated=delivery.saturated,
            origin_availability=delivery.availability,
            attack_gbps_reaching_origin=delivery.delivered_attack_gbps,
        )
