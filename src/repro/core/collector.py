"""The daily DNS record collector (§IV-B-1).

The paper runs a recursive resolver in a cloud zone, purges its cache
before each run, and collects the A, CNAME, and NS records of every
tested ``www`` hostname once per day for six weeks.
:class:`DnsRecordCollector` does exactly this against the simulated
Internet: one :class:`DomainSnapshot` per site per day, aggregated into
a :class:`DailySnapshot`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..dns.message import Rcode
from ..dns.name import DomainName
from ..dns.records import RecordType
from ..dns.resolver import RecursiveResolver, ResolutionResult
from ..net.ipaddr import IPv4Address

__all__ = ["DomainSnapshot", "DailySnapshot", "DnsRecordCollector"]


@dataclass(frozen=True, slots=True)
class DomainSnapshot:
    """One site's A/CNAME/NS view on one day."""

    day: int
    www: DomainName
    a_records: tuple
    cnames: tuple
    ns_targets: tuple
    rcode: Rcode = Rcode.NOERROR
    #: False when resolution gave up inside its retry budget — the
    #: snapshot is a hole in the data, not evidence of absence.  The
    #: status determiner turns unmeasured snapshots into UNMEASURED
    #: observations instead of a false NONE.
    measured: bool = True

    @property
    def resolved(self) -> bool:
        """True when the hostname resolved to at least one address."""
        return bool(self.a_records)


@dataclass
class DailySnapshot:
    """All sites' snapshots for one collection day."""

    day: int
    domains: Dict[str, DomainSnapshot] = field(default_factory=dict)

    def get(self, www: "DomainName | str") -> Optional[DomainSnapshot]:
        """Snapshot for one hostname, if collected."""
        return self.domains.get(str(DomainName(www)))

    @property
    def unmeasured_count(self) -> int:
        """Sites whose resolution gave up this day (data holes)."""
        return sum(1 for s in self.domains.values() if not s.measured)

    @property
    def is_partial(self) -> bool:
        """True when at least one site went unmeasured this day."""
        return self.unmeasured_count > 0

    def __len__(self) -> int:
        return len(self.domains)

    def __iter__(self):
        return iter(self.domains.values())


class DnsRecordCollector:
    """Collects daily A/CNAME/NS snapshots through a recursive resolver."""

    def __init__(self, resolver: RecursiveResolver) -> None:
        self._resolver = resolver
        self.runs = 0

    def state_dict(self) -> Dict[str, object]:
        """Persistent mutable state: the run counter and the resolver."""
        return {"runs": self.runs, "resolver": self._resolver.state_dict()}

    def restore_state(self, state: Dict[str, object]) -> None:
        """Reinstate state captured by :meth:`state_dict`."""
        self.runs = int(state["runs"])
        self._resolver.restore_state(state["resolver"])

    def collect(
        self, hostnames: Iterable["DomainName | str"], day: int
    ) -> DailySnapshot:
        """One full collection run.

        The resolver cache is purged first so each day's records are
        independent of the previous day's (NS TTLs exceed a day).  Both
        passes (A with CNAME chain, then apex NS) run through
        :meth:`~repro.dns.resolver.RecursiveResolver.resolve_many`, so
        sites sharing a zone cut share its delegation discovery.
        """
        self._resolver.purge_cache()
        self.runs += 1
        names = [DomainName(hostname) for hostname in hostnames]
        a_results = self._resolver.resolve_many(
            (name, RecordType.A) for name in names
        )
        ns_results = self._resolver.resolve_many(
            (name.apex, RecordType.NS) for name in names
        )
        snapshot = DailySnapshot(day=day)
        for www, a_result, ns_result in zip(names, a_results, ns_results):
            record = self._snapshot_from_results(www, day, a_result, ns_result)
            snapshot.domains[str(record.www)] = record
        if snapshot.is_partial:
            self._resolver.metrics.incr("collector.partial_days")
            self._resolver.metrics.incr(
                "collector.unmeasured", snapshot.unmeasured_count
            )
        return snapshot

    def collect_one(self, www: DomainName, day: int) -> DomainSnapshot:
        """Collect A (with the CNAME chain) and apex NS for one site."""
        result = self._resolver.resolve(www, RecordType.A)
        ns_result = self._resolver.resolve(www.apex, RecordType.NS)
        return self._snapshot_from_results(www, day, result, ns_result)

    @staticmethod
    def _snapshot_from_results(
        www: DomainName,
        day: int,
        result: ResolutionResult,
        ns_result: ResolutionResult,
    ) -> DomainSnapshot:
        return DomainSnapshot(
            day=day,
            www=www,
            a_records=tuple(result.addresses),
            cnames=tuple(result.cname_targets),
            ns_targets=tuple(
                record.target
                for record in ns_result.records
                if record.rtype is RecordType.NS
            ),
            rcode=result.rcode,
            measured=not (result.gave_up or ns_result.gave_up),
        )

    @staticmethod
    def addresses_of(snapshot: DomainSnapshot) -> List[IPv4Address]:
        """Convenience accessor returning a mutable address list."""
        return list(snapshot.a_records)
