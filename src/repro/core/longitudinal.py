"""Longitudinal adoption tracking (the Jonker et al. measurement).

The paper's related work (§VII) cites Jonker et al. (IMC 2016), who
measured DPS adoption growing by a factor of **1.24 over 1.5 years**.
Our world's behaviour model implies the same kind of secular growth:
the planted JOIN rate exceeds the LEAVE rate (195 vs 145 per day at 1M
scale), compounding to roughly +1.2% over the paper's six weeks and
~1.2× over 1.5 years.

:class:`LongitudinalStudy` measures that trajectory the way Jonker et
al. did — periodic DNS snapshots classified through the same Table III
pipeline — and reports the observed growth factor next to the
behaviour-model prediction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..world.config import BehaviorRates
from ..world.internet import SimulatedInternet
from .collector import DnsRecordCollector
from .matching import ProviderMatcher
from .status import StatusDeterminer

__all__ = ["AdoptionPoint", "LongitudinalStudy", "predicted_growth_factor"]


@dataclass(frozen=True)
class AdoptionPoint:
    """One periodic adoption measurement."""

    day: int
    adopted: int
    population: int

    @property
    def rate(self) -> float:
        """Adoption as a fraction of the population."""
        return self.adopted / self.population if self.population else 0.0


def predicted_growth_factor(
    days: int,
    base_rate: float = 0.1485,
    rates: Optional[BehaviorRates] = None,
) -> float:
    """The behaviour model's closed-form growth prediction.

    Daily net inflow = join_rate·(1−adopted) − leave_rate·adopted,
    integrated linearly (the drift is tiny relative to the pools, so
    compounding is negligible on these horizons).  Over 1.5 years this
    yields ≈1.2×, matching Jonker et al.'s measured 1.24×.
    """
    r = rates or BehaviorRates()
    net_daily = r.join_daily * (1 - base_rate) - r.leave_daily * base_rate
    return (base_rate + net_daily * days) / base_rate


class LongitudinalStudy:
    """Periodic adoption snapshots over a long horizon."""

    def __init__(
        self,
        world: SimulatedInternet,
        sample_every_days: int = 14,
    ) -> None:
        if sample_every_days < 1:
            raise ValueError("sampling interval must be at least one day")
        self.world = world
        self.sample_every_days = sample_every_days
        matcher = ProviderMatcher(world.specs, world.routeviews)
        shared = frozenset(
            ip for p in world.providers.values() for ip in p.offnet_edge_ips
        )
        self._determiner = StatusDeterminer(matcher, shared)
        self._collector = DnsRecordCollector(world.make_resolver())
        self._hostnames = [str(site.www) for site in world.population]

    def _sample(self) -> AdoptionPoint:
        snapshot = self._collector.collect(self._hostnames, self.world.clock.day)
        adopted = sum(
            1
            for domain in snapshot
            if self._determiner.observe(domain).provider is not None
        )
        return AdoptionPoint(
            day=snapshot.day, adopted=adopted, population=len(self._hostnames)
        )

    def run(self, total_days: int) -> List[AdoptionPoint]:
        """Sample adoption every ``sample_every_days`` for ``total_days``."""
        points = [self._sample()]
        elapsed = 0
        while elapsed < total_days:
            step = min(self.sample_every_days, total_days - elapsed)
            self.world.engine.run_days(step)
            elapsed += step
            points.append(self._sample())
        return points

    @staticmethod
    def growth_factor(points: List[AdoptionPoint]) -> float:
        """Last-over-first adoption ratio (Jonker et al.'s statistic)."""
        if len(points) < 2 or points[0].adopted == 0:
            return 1.0
        return points[-1].adopted / points[0].adopted
