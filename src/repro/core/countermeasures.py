"""Countermeasures against residual resolution (§VI-B).

Provider side:

* **silent termination** — swap the platform's residual policy to
  :class:`~repro.dps.residual_policy.RefuseAfterTermination`;
* **track-and-compare** — swap to
  :class:`~repro.dps.residual_policy.TrackAndCompare`, which keeps
  answering only while the public resolution still matches the stored
  origin (service continuity without exposure).

Customer side:

* **fake A record** — set the stored origin to a decoy address in the
  portal just before terminating, so whatever the provider leaks is
  worthless;
* **rotate after adopting** — change the origin address after joining a
  new platform, which kills this vector *and* the rest of Table I.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..dps.provider import DpsProvider
from ..dps.residual_policy import (
    RefuseAfterTermination,
    ResidualPolicy,
    TrackAndCompare,
)
from ..net.ipaddr import IPv4Address
from ..world.website import Website

__all__ = [
    "apply_provider_policy",
    "silent_termination",
    "track_and_compare",
    "leave_with_fake_a",
    "switch_then_rotate",
]


def apply_provider_policy(provider: DpsProvider, policy: ResidualPolicy) -> ResidualPolicy:
    """Swap a platform's residual policy; returns the previous one."""
    previous = provider.residual_policy
    provider.residual_policy = policy
    return previous


def silent_termination(provider: DpsProvider) -> ResidualPolicy:
    """Stop answering for ex-customers entirely (§VI-B-1, option 1)."""
    return apply_provider_policy(provider, RefuseAfterTermination())


def track_and_compare(provider: DpsProvider) -> ResidualPolicy:
    """Answer only while the public resolution still matches (option 2)."""
    return apply_provider_policy(provider, TrackAndCompare())


def leave_with_fake_a(
    site: Website,
    fake_address: "IPv4Address | str",
    informed: bool = True,
    rehost: bool = False,
    die: bool = False,
) -> None:
    """Customer-side decoy (§VI-B-2): poison the stored origin, then leave.

    After this, any residual answer from the previous provider points at
    the decoy rather than the real origin.
    """
    provider = site.provider
    if provider is None:
        raise ValueError(f"{site.www} is not on any DPS platform")
    provider.update_origin(site.www, IPv4Address(fake_address))
    site.leave(informed=informed, rehost=rehost, die=die)


def switch_then_rotate(
    site: Website,
    new_provider: DpsProvider,
    rerouting,
    plan=None,
    informed: bool = True,
) -> None:
    """Customer-side best practice: switch providers *and* rotate the
    origin IP, so the address the old provider remembers is dead."""
    kwargs = {}
    if plan is not None:
        kwargs["plan"] = plan
    site.switch(
        new_provider,
        rerouting,
        informed=informed,
        rotate_origin_ip=True,
        **kwargs,
    )


@dataclass(frozen=True)
class CountermeasureComparison:
    """Exposure with and without a countermeasure, for ablation benches."""

    scenario: str
    exposed_without: int
    exposed_with: int

    @property
    def reduction(self) -> float:
        """Fractional reduction in exposures (1.0 = fully eliminated)."""
        if self.exposed_without == 0:
            return 0.0
        return 1.0 - self.exposed_with / self.exposed_without
