"""Renderers that print each paper artifact from a study report.

Each function returns a plain-text table or series shaped like the
corresponding table/figure in the paper, with both raw simulated counts
and 1M-scaled equivalents so shapes can be compared directly.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..world.admin import BehaviorKind
from .pause import empirical_cdf
from .study import StudyReport

__all__ = [
    "render_table2_providers",
    "render_table3_status",
    "render_table4_behaviors",
    "render_fig2_adoption",
    "render_fig3_behaviors",
    "render_fig5_pause_cdf",
    "render_fig6_cloudflare",
    "render_fig7_vantage",
    "render_table5_ip_unchanged",
    "render_table6_residual",
    "render_fig9_exposure",
    "render_ground_truth_validation",
    "render_full_report",
]


def _table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    widths = [len(str(h)) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    def fmt(cells: Sequence[object]) -> str:
        return "  ".join(str(c).ljust(widths[i]) for i, c in enumerate(cells))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def render_table2_providers() -> str:
    """Table II: the provider identification catalog."""
    from ..dps.catalog import PAPER_PROVIDERS

    rows = []
    for spec in PAPER_PROVIDERS:
        rows.append(
            (
                spec.name,
                " ".join(spec.cname_substrings) or "-",
                " ".join(spec.ns_substrings) or "-",
                " ".join(str(asn) for asn in spec.as_numbers),
                " / ".join(str(m) for m in spec.rerouting_methods),
            )
        )
    return "Table II — DPS provider information\n" + _table(
        ["provider", "CNAME substrings", "NS substrings", "AS numbers", "rerouting"],
        rows,
    )


def render_table3_status() -> str:
    """Table III: the status-determination rules, as implemented."""
    rows = [
        ("ON", "A record points to a DPS's IP (A-matched)"),
        ("OFF", "delegated to DPS (CNAME-matched, or NS-matched with "
                "Cloudflare) and A record points to a non-DPS IP"),
        ("NONE", "not delegated to DPS; A record points to a non-DPS IP"),
    ]
    return "Table III — DPS status\n" + _table(["status", "rule"], rows)


def render_table4_behaviors() -> str:
    """Table IV: the usage behaviours and their status transitions."""
    rows = [
        ("JOIN (J)", "NONE -> ON"),
        ("LEAVE (L)", "ON / OFF -> NONE"),
        ("PAUSE (P)", "ON -> OFF"),
        ("RESUME (R)", "OFF -> ON"),
        ("SWITCH (S)", "provider P1 -> P2"),
        ("NULL (N)", "no change"),
    ]
    return "Table IV — DPS usage behaviours\n" + _table(
        ["behaviour", "transition"], rows
    )


def render_fig2_adoption(report: StudyReport) -> str:
    """Fig. 2: average DPS adoption per provider."""
    scale = report.scale_factor
    rows = [
        (provider, f"{count:.1f}", f"{count * scale:,.0f}")
        for provider, count in sorted(
            report.adoption_by_provider.items(), key=lambda kv: -kv[1]
        )
    ]
    growth = (
        f"{report.adoption_growth:+.2%}"
        if report.adoption_growth is not None
        else "undefined (no adopters)"
    )
    header = (
        f"Fig. 2 — DPS adoption (avg/day). Overall rate "
        f"{report.overall_adoption_rate:.2%} (paper: 14.85%); top-sites "
        f"{report.top_sites_adoption_rate:.2%} (paper: 38.98%); growth "
        f"{growth} (paper: +1.17%).\n"
    )
    return header + _table(["provider", "sites (sim)", "sites (×scale)"], rows)


def render_fig3_behaviors(report: StudyReport) -> str:
    """Fig. 3: average daily usage behaviours."""
    paper = {
        BehaviorKind.JOIN: 195,
        BehaviorKind.LEAVE: 145,
        BehaviorKind.PAUSE: 87,
        BehaviorKind.RESUME: 62,
        BehaviorKind.SWITCH: 21,
    }
    scale = report.scale_factor
    rows = []
    for kind in BehaviorKind:
        measured = report.behavior_averages.get(kind, 0.0)
        rows.append(
            (
                kind.name,
                f"{measured:.2f}",
                f"{measured * scale:.0f}",
                paper.get(kind, "-"),
            )
        )
    return "Fig. 3 — usage behaviours per day\n" + _table(
        ["behaviour", "sim/day", "×scale", "paper/day"], rows
    )


def render_fig5_pause_cdf(report: StudyReport) -> str:
    """Fig. 5: CDF of pause periods."""
    sections = []
    series: List = [("overall", report.pause_durations_overall)]
    series.extend(sorted(report.pause_durations_by_provider.items()))
    for label, durations in series:
        if not durations:
            sections.append(f"{label}: no completed pauses observed")
            continue
        cdf = empirical_cdf(durations)
        points = "  ".join(f"({d}d, {frac:.0%})" for d, frac in cdf[:10])
        over5 = sum(1 for d in durations if d > 5) / len(durations)
        sections.append(
            f"{label}: n={len(durations)}, >5 days: {over5:.0%} "
            f"(paper ~30%)\n  CDF: {points}"
        )
    return "Fig. 5 — pause-period CDF\n" + "\n".join(sections)


def render_fig6_cloudflare(report: StudyReport) -> str:
    """Fig. 6: Cloudflare adoption breakdown by rerouting."""
    return (
        "Fig. 6 — Cloudflare rerouting breakdown\n"
        f"NS-based:    {report.cloudflare_ns_share:.2%} (paper: 89.95%)\n"
        f"CNAME-based: {report.cloudflare_cname_share:.2%} (paper: 10.05%)"
    )


def render_fig7_vantage(report: StudyReport) -> str:
    """Fig. 7: per-PoP scan load (vantage-point spreading)."""
    rows = [
        (pop, count)
        for pop, count in sorted(
            report.scan_pop_query_counts.items(),
            key=lambda kv: (-kv[1], kv[0]),
        )
        if count > 0
    ]
    return (
        f"Fig. 7 — scan load across PoPs ({report.harvested_nameservers} "
        "nameservers harvested; paper: 391)\n"
        + _table(["PoP", "queries"], rows)
    )


def render_table5_ip_unchanged(report: StudyReport) -> str:
    """Table V: origin IP unchanged rate per provider."""
    if report.ip_change is None:
        return "Table V — not collected"
    paper = {
        "cloudflare": 59.5, "akamai": 58.0, "cloudfront": 35.0,
        "incapsula": 63.4, "fastly": 57.1, "edgecast": 66.7,
        "cdnetworks": 73.9, "dosarrest": 41.8, "limelight": 66.7,
        "stackpath": 72.5, "cdn77": 93.8,
    }
    rows = []
    for provider, row in sorted(
        report.ip_change.rows.items(), key=lambda kv: -kv[1].join_resume
    ):
        rows.append(
            (
                provider,
                row.join_resume,
                row.unchanged,
                f"{row.percentage:.1%}",
                f"{paper.get(provider, 0):.1f}%",
            )
        )
    total = report.ip_change.total
    rows.append(
        ("total", total.join_resume, total.unchanged, f"{total.percentage:.1%}", "58.6%")
    )
    return "Table V — origin IP unchanged rate\n" + _table(
        ["provider", "join&resume", "unchanged", "sim %", "paper %"], rows
    )


def render_table6_residual(report: StudyReport) -> str:
    """Table VI: residual resolution in the wild."""
    rows = []
    for weekly in report.cloudflare_weekly:
        rows.append(
            (
                f"cloudflare wk{weekly.week + 1}",
                weekly.hidden_count,
                weekly.verified_count,
                f"{weekly.verified_fraction:.1%}",
            )
        )
    cf = report.cloudflare_totals
    cf_pct = cf["verified"] / cf["hidden"] if cf["hidden"] else 0.0
    rows.append(("cloudflare TOTAL", cf["hidden"], cf["verified"], f"{cf_pct:.1%}"))
    inc = report.incapsula_totals
    inc_pct = inc["verified"] / inc["hidden"] if inc["hidden"] else 0.0
    rows.append(("incapsula TOTAL", inc["hidden"], inc["verified"], f"{inc_pct:.1%}"))
    return (
        "Table VI — residual resolution in the wild "
        "(paper: CF 3,504 hidden / 24.8% verified; Incapsula 42 / 69.0%)\n"
        + _table(["scan", "hidden", "verified", "verified %"], rows)
    )


def render_fig9_exposure(report: StudyReport) -> str:
    """Fig. 9: exposure observations over the weekly scans."""
    summary = report.cloudflare_exposure
    if summary is None:
        return "Fig. 9 — not collected"
    new_rows = [(f"week {w + 1}", n) for w, n in sorted(summary.new_per_week.items())]
    return (
        "Fig. 9 — exposure observations (Cloudflare)\n"
        f"distinct exposed origins: {summary.total_distinct}\n"
        f"always exposed (all {summary.weeks} scans): {summary.always_exposed} (paper: 139)\n"
        f"bounded exposures (appear & disappear in-study): "
        f"{summary.bounded_exposures} (paper: 388)\n"
        f"avg newly exposed per later week: {summary.average_new_per_week:.1f} "
        "(paper: ~114)\n" + _table(["scan", "newly exposed"], new_rows)
    )


def render_ground_truth_validation(report: StudyReport) -> str:
    """Measured vs planted behaviour rates — the check the paper's
    authors could never run, since the real Internet keeps no ground
    truth.  Shown per behaviour kind, averaged per day."""
    truth = report.ground_truth_daily_average()
    rows = []
    for kind in BehaviorKind:
        measured = report.behavior_averages.get(kind, 0.0)
        planted = truth.get(kind, 0.0)
        delta = measured - planted
        rows.append((kind.name, f"{measured:.2f}", f"{planted:.2f}", f"{delta:+.2f}"))
    return (
        "Validation — measured vs ground-truth behaviours (per day)\n"
        + _table(["behaviour", "measured", "planted", "delta"], rows)
    )


def render_full_report(report: StudyReport) -> str:
    """All artifacts, concatenated in paper order."""
    parts = [
        render_fig2_adoption(report),
        render_fig3_behaviors(report),
        render_fig5_pause_cdf(report),
        render_fig6_cloudflare(report),
        render_fig7_vantage(report),
        render_table5_ip_unchanged(report),
        render_table6_residual(report),
        render_fig9_exposure(report),
        render_ground_truth_validation(report),
    ]
    return "\n\n".join(parts)
