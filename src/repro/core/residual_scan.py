"""Residual-resolution scanners — the §V case studies.

**Cloudflare** (NS-based rerouting): harvest the ``*.ns.cloudflare.*``
nameserver hostnames observed in customer delegations, resolve each to
its anycast address, then query the top-N ``www`` hostnames *directly*
against randomly-chosen nameservers, rotating across five geographic
vantage points so the load spreads over distinct PoPs (Fig. 7).  A
nameserver answers for sites whose records it still holds and refuses
the rest.

**Incapsula** (CNAME-based rerouting): the canonical names are assigned
unpredictably and deleted on departure, so they must be *collected
while customers are active* (§III-B).  The scanner accumulates every
``incapdns`` CNAME seen in daily snapshots and keeps resolving those
canonicals — long after the customer left.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..dns.client import DnsClient
from ..dns.message import Rcode
from ..dns.name import DomainName
from ..dns.records import RecordType
from ..dns.resolver import RecursiveResolver
from ..net.ipaddr import IPv4Address
from ..obs.metrics import MetricsRegistry
from ..rng import SeededRng, stable_hash
from .collector import DailySnapshot
from .matching import ProviderMatcher
from .pipeline import RetrievedRecord

__all__ = ["NameserverHarvest", "CloudflareScanner", "IncapsulaScanner"]


class NameserverHarvest:
    """Collects a provider's customer-facing nameserver identities.

    The paper extracted 391 nameservers carrying the unique string
    ``ns.cloudflare.com`` from observed NS records (§V-A-1).

    The harvest is a *set with a canonical order*: every read
    (:attr:`hostnames`, :meth:`state_dict`, :meth:`resolve_addresses`)
    walks the hostnames sorted lexicographically.  First-seen order is
    deliberately not part of the contract — it depends on which sites a
    process collects and in what interleaving, so a sharded run's merged
    harvest could never match a monolithic run's.  Sorted order is
    partition-independent: the union of per-shard harvests reads back
    exactly like the monolithic harvest.
    """

    def __init__(self, marker: str = "ns.cloudflare") -> None:
        self.marker = marker
        self._hostnames: Dict[DomainName, None] = {}

    def ingest(self, snapshots: Iterable[DailySnapshot]) -> None:
        """Harvest from daily collection snapshots' NS records."""
        for snapshot in snapshots:
            for domain in snapshot:
                for ns_target in domain.ns_targets:
                    if self.marker in str(ns_target):
                        self._hostnames.setdefault(DomainName(ns_target))

    def _sorted(self) -> List[DomainName]:
        return sorted(self._hostnames, key=str)

    @property
    def hostnames(self) -> List[DomainName]:
        """Every harvested nameserver hostname, in canonical order."""
        return self._sorted()

    def state_dict(self) -> List[str]:
        """The harvested hostnames, in canonical (sorted) order."""
        return [str(hostname) for hostname in self._sorted()]

    def restore_state(self, hostnames: Iterable[str]) -> None:
        """Reinstate the harvest captured by :meth:`state_dict`."""
        self._hostnames = {DomainName(hostname): None for hostname in hostnames}

    def merge(self, other: "NameserverHarvest") -> None:
        """Absorb another harvest (same marker) into this one.

        Set union; the canonical sorted order makes the result identical
        no matter how the ingests were partitioned across processes.
        """
        for hostname in other._hostnames:
            self._hostnames.setdefault(hostname)

    def resolve_addresses(self, resolver: RecursiveResolver) -> List[IPv4Address]:
        """Resolve each harvested hostname to its (anycast) address.

        One batched pass: the hostnames all sit under the provider's
        infrastructure zone, exactly the sibling-heavy shape the
        resolver's zone-cut memo exists for.  The batch walks the
        canonical sorted order, so the returned address list is the same
        whichever process(es) did the harvesting.
        """
        results = resolver.resolve_many(
            (hostname, RecordType.A) for hostname in self._sorted()
        )
        addresses: List[IPv4Address] = []
        for result in results:
            addresses.extend(result.addresses)
        return addresses

    def __len__(self) -> int:
        return len(self._hostnames)


class CloudflareScanner:  # repro: allow[REP063] -- constructed fresh inside each weekly sweep; never alive at a checkpoint barrier
    """Direct-query scanner against an NS-rerouting provider's fleet."""

    def __init__(
        self,
        nameserver_ips: Sequence["IPv4Address | str"],
        vantage_clients: Sequence[DnsClient],
        provider: str = "cloudflare",
        rng: Optional[SeededRng] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if not nameserver_ips:
            raise ValueError("scanner needs at least one nameserver address")
        if not vantage_clients:
            raise ValueError("scanner needs at least one vantage client")
        self._nameserver_ips = [IPv4Address(ip) for ip in nameserver_ips]
        self._clients = list(vantage_clients)
        self.provider = provider
        #: Nameserver choice is random (§V-A-2: "randomly-chosen
        #: nameservers"); a private deterministic stream keeps results
        #: reproducible when the caller has no stream to fork.
        self._rng = (
            rng
            if rng is not None
            else SeededRng(stable_hash("cloudflare-scanner", provider))  # repro: allow[REP042] -- fallback is deterministically seeded from the provider name; kept for direct-construction tests
        )
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.queries_answered = 0
        self.queries_ignored = 0
        #: Hostnames whose sweep was throttled/shed from *every* vantage
        #: point — unmeasured this week, never recorded as absent.
        self.queries_throttled = 0

    def scan(
        self,
        hostnames: Iterable["DomainName | str"],
        start_index: int = 0,
    ) -> List[RetrievedRecord]:
        """Retrieve the A records the provider still holds.

        Each hostname is queried at a *randomly-chosen* nameserver from
        the next vantage point in rotation — the paper's way of
        spreading the measurement across PoPs (Fig. 7).  The choices are
        independent: vantage rotation must not lock a vantage point to a
        fixed nameserver subset, which is what an aligned
        ``index % len`` stride does whenever the fleet size divides
        evenly by the vantage count.

        Both per-hostname decisions are *position-independent*: the
        nameserver choice draws from a stream forked off ``rng`` by the
        hostname itself (not from the stream's running position), and
        the vantage rotation uses the hostname's global index —
        ``start_index`` is the offset of the first hostname in the full
        population.  A process scanning only a slice of the population
        therefore queries each hostname at exactly the (vantage,
        nameserver) pair the whole-population scan would.

        Provider defenses may throttle a query; the admission verdict
        keys on the client's region, so the scanner degrades gracefully
        by rotating through the *other* vantage points before giving up.
        A hostname refused from every vantage counts in
        :attr:`queries_throttled` — an unmeasured sweep, never an
        absence observation.  Rotation never runs in an unthrottled
        sweep, so traffic-free scans stay byte-identical.
        """
        retrieved: List[RetrievedRecord] = []
        for index, hostname in enumerate(hostnames, start=start_index):
            ns_ip = self._rng.fork(str(DomainName(hostname))).choice(
                self._nameserver_ips
            )
            response = None
            throttled_everywhere = True
            for step in range(len(self._clients)):
                client = self._clients[(index + step) % len(self._clients)]
                response = client.query(ns_ip, hostname, RecordType.A)
                self.metrics.incr("scan.cloudflare.queries")
                # Duck-typed like the fabric's handlers: stub clients
                # without throttle tracking are never throttled.
                if not getattr(client, "last_throttled", False):
                    throttled_everywhere = False
                    break
            if throttled_everywhere:
                self.queries_throttled += 1
                self.metrics.incr("scan.cloudflare.throttled")
                continue
            if response is None or response.rcode is not Rcode.NOERROR or not response.answers:
                self.queries_ignored += 1
                self.metrics.incr("scan.cloudflare.ignored")
                continue
            addresses = tuple(
                record.address
                for record in response.answers
                if record.rtype is RecordType.A
            )
            if not addresses:
                self.queries_ignored += 1
                self.metrics.incr("scan.cloudflare.ignored")
                continue
            self.queries_answered += 1
            self.metrics.incr("scan.cloudflare.answered")
            retrieved.append(
                RetrievedRecord(
                    www=str(DomainName(hostname)),
                    provider=self.provider,
                    addresses=addresses,
                )
            )
        return retrieved


class IncapsulaScanner:
    """CNAME-tracking scanner against a CNAME-rerouting provider."""

    def __init__(
        self,
        resolver: RecursiveResolver,
        matcher: ProviderMatcher,
        provider: str = "incapsula",
    ) -> None:
        self._resolver = resolver
        self._matcher = matcher
        self.provider = provider
        #: canonical name → the customer www hostname it was seen at.
        self._canonicals: Dict[DomainName, str] = {}

    def ingest(self, snapshots: Iterable[DailySnapshot]) -> None:
        """Accumulate the provider's CNAMEs from daily snapshots."""
        for snapshot in snapshots:
            for domain in snapshot:
                for target in domain.cnames:
                    if self._matcher.cname_match(target) == self.provider:
                        self._canonicals.setdefault(DomainName(target), str(domain.www))

    @property
    def known_canonicals(self) -> Dict[DomainName, str]:
        """Every collected canonical and the site it belonged to."""
        return dict(self._canonicals)

    def state_dict(self) -> Dict[str, object]:
        """Persistent mutable state: canonicals (ordered) + resolver."""
        return {
            "canonicals": [
                [str(canonical), www] for canonical, www in self._canonicals.items()
            ],
            "resolver": self._resolver.state_dict(),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Reinstate state captured by :meth:`state_dict`."""
        self._canonicals = {
            DomainName(canonical): www for canonical, www in state["canonicals"]
        }
        self._resolver.restore_state(state["resolver"])

    def scan(self) -> List[RetrievedRecord]:
        """Resolve every known canonical and keep what answers.

        Resolution of the canonical runs through the provider's own
        delegation, so a terminated customer's canonical reaching the
        provider's nameservers exercises its residual policy exactly
        like a direct query would.
        """
        self._resolver.purge_cache()
        canonicals = list(self._canonicals.items())
        results = self._resolver.resolve_many(
            (canonical, RecordType.A) for canonical, _ in canonicals
        )
        retrieved: List[RetrievedRecord] = []
        for (canonical, www), result in zip(canonicals, results):
            if not result.addresses:
                continue
            self._resolver.metrics.incr("scan.incapsula.answered")
            retrieved.append(
                RetrievedRecord(
                    www=www,
                    provider=self.provider,
                    addresses=tuple(result.addresses),
                    canonical=str(canonical),
                )
            )
        return retrieved
