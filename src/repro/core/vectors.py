"""The Table I origin-exposure attack vectors.

The paper's §II-B surveys eight vectors (from Vissers et al.) for
unmasking a DPS-protected origin; residual resolution is the *new* one
the paper adds.  This module implements the classic vectors the
simulated world supports, so the two families can be compared:

* **IP history** — replay passive-DNS history from before the site was
  protected (:class:`~repro.core.history.PassiveDnsDb`).
* **Subdomains** — resolve common auxiliary subdomains (``dev`` …) that
  were imported unproxied and still point at the origin host.
* **DNS records** — the MX record's mail host often shares the origin
  machine.

Every candidate address is HTML-verified against the site as currently
served (the same check the residual pipeline uses), so results are
directly comparable with Table VI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..dns.name import DomainName
from ..dns.records import RecordType
from ..dns.resolver import RecursiveResolver
from ..net.ipaddr import IPv4Address
from .history import PassiveDnsDb
from .htmlverify import HtmlVerifier
from .matching import ProviderMatcher

__all__ = ["VectorFinding", "OriginExposureScanner", "DEFAULT_SUBDOMAIN_WORDLIST"]

#: Subdomain guesses, as wordlist-driven scanners use (CloudPiercer-style).
DEFAULT_SUBDOMAIN_WORDLIST: Tuple[str, ...] = (
    "dev", "staging", "test", "mail", "origin", "direct", "ftp", "cpanel",
)


@dataclass(frozen=True)
class VectorFinding:
    """One vector's outcome for one site."""

    vector: str
    www: str
    candidates: Tuple[IPv4Address, ...]
    verified_origins: Tuple[IPv4Address, ...]

    @property
    def exposed(self) -> bool:
        """True when the vector yielded a verified live origin."""
        return bool(self.verified_origins)


class OriginExposureScanner:
    """Runs the classic Table I vectors against one protected site."""

    def __init__(
        self,
        resolver: RecursiveResolver,
        matcher: ProviderMatcher,
        verifier: HtmlVerifier,
        wordlist: Sequence[str] = DEFAULT_SUBDOMAIN_WORDLIST,
    ) -> None:
        self._resolver = resolver
        self._matcher = matcher
        self._verifier = verifier
        self._wordlist = tuple(wordlist)

    # -- individual vectors -----------------------------------------------

    def ip_history(
        self, www: "DomainName | str", passive_dns: PassiveDnsDb
    ) -> VectorFinding:
        """Table I row 1: historical DNS databases."""
        candidates = passive_dns.candidate_origins(www, self._matcher)
        return self._verify("ip-history", www, candidates)

    def subdomains(self, www: "DomainName | str") -> VectorFinding:
        """Table I row 2: unprotected subdomains on the origin host."""
        apex = DomainName(www).apex
        candidates: List[IPv4Address] = []
        for label in self._wordlist:
            result = self._resolver.resolve(apex.child(label), RecordType.A)
            for address in result.addresses:
                if self._matcher.in_provider_ranges(address):
                    continue
                if address not in candidates:
                    candidates.append(address)
        return self._verify("subdomains", www, candidates)

    def mx_records(self, www: "DomainName | str") -> VectorFinding:
        """Table I row 3: MX records pointing at the origin."""
        apex = DomainName(www).apex
        candidates: List[IPv4Address] = []
        mx_result = self._resolver.resolve(apex, RecordType.MX)
        for record in mx_result.records:
            if record.rtype is not RecordType.MX:
                continue
            address_result = self._resolver.resolve(record.target, RecordType.A)
            for address in address_result.addresses:
                if self._matcher.in_provider_ranges(address):
                    continue
                if address not in candidates:
                    candidates.append(address)
        return self._verify("mx-records", www, candidates)

    # -- the sweep ---------------------------------------------------------

    def scan_site(
        self,
        www: "DomainName | str",
        passive_dns: Optional[PassiveDnsDb] = None,
    ) -> List[VectorFinding]:
        """Run every applicable vector against one site."""
        findings = []
        if passive_dns is not None:
            findings.append(self.ip_history(www, passive_dns))
        findings.append(self.subdomains(www))
        findings.append(self.mx_records(www))
        return findings

    def exposed_by_any(
        self,
        www: "DomainName | str",
        passive_dns: Optional[PassiveDnsDb] = None,
    ) -> bool:
        """Vissers et al.'s headline question: is the site exposed by at
        least one classic vector?"""
        return any(f.exposed for f in self.scan_site(www, passive_dns))

    # -- internals ------------------------------------------------------------

    def _verify(
        self, vector: str, www: "DomainName | str", candidates: Iterable[IPv4Address]
    ) -> VectorFinding:
        hostname = DomainName(www)
        public = self._resolver.resolve(hostname, RecordType.A)
        verified: List[IPv4Address] = []
        candidate_list = list(candidates)
        if public.addresses:
            reference = public.addresses[0]
            for candidate in candidate_list:
                outcome = self._verifier.verify(hostname, reference, candidate)
                if outcome.verified:
                    verified.append(candidate)
        return VectorFinding(
            vector=vector,
            www=str(hostname),
            candidates=tuple(candidate_list),
            verified_origins=tuple(verified),
        )
