"""A/CNAME/NS matching (§IV-B-2).

Maps collected DNS records onto DPS providers using the Table II data:

* **A-matching** — is the address inside a provider's announced ranges?
  Answered with a RouteViews longest-prefix match and the providers' AS
  numbers, exactly as the paper did with the RouteView archive.
* **CNAME-matching** — does the *second-level domain* of a CNAME target
  contain one of a provider's unique substrings?
* **NS-matching** — same, for nameserver hostnames.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..dns.name import DomainName
from ..dps.catalog import ProviderSpec
from ..net.ipaddr import IPv4Address
from ..net.routeviews import RouteViewsDb

__all__ = ["ProviderMatcher"]


class ProviderMatcher:
    """Implements the three matching processes against Table II data."""

    def __init__(self, specs: Iterable[ProviderSpec], routeviews: RouteViewsDb) -> None:
        self._specs: List[ProviderSpec] = list(specs)
        self._routeviews = routeviews
        self._asn_to_provider: Dict[int, str] = {}
        for spec in self._specs:
            for asn in spec.as_numbers:
                self._asn_to_provider[asn] = spec.name
        self._cname_substrings: List[Tuple[str, str]] = [
            (substring, spec.name)
            for spec in self._specs
            for substring in spec.cname_substrings
        ]
        self._ns_substrings: List[Tuple[str, str]] = [
            (substring, spec.name)
            for spec in self._specs
            for substring in spec.ns_substrings
        ]

    @property
    def specs(self) -> List[ProviderSpec]:
        """The provider specs this matcher was built from."""
        return list(self._specs)

    # -- A-matching -----------------------------------------------------

    def a_match(self, address: "IPv4Address | str") -> Optional[str]:
        """Provider owning the address's announced prefix, if any."""
        asn = self._routeviews.lookup(address)
        if asn is None:
            return None
        return self._asn_to_provider.get(asn)

    def a_match_any(self, addresses: Iterable["IPv4Address | str"]) -> Optional[str]:
        """First A-matched provider across several addresses."""
        for address in addresses:
            provider = self.a_match(address)
            if provider is not None:
                return provider
        return None

    def in_provider_ranges(self, address: "IPv4Address | str") -> bool:
        """True when the address belongs to *any* studied provider."""
        return self.a_match(address) is not None

    # -- CNAME-matching ---------------------------------------------------

    @staticmethod
    def _second_level_label(name: DomainName) -> Optional[str]:
        labels = name.labels
        return labels[-2] if len(labels) >= 2 else None

    def cname_match(self, target: "DomainName | str") -> Optional[str]:
        """Provider whose unique substring appears in the CNAME's SLD."""
        sld = self._second_level_label(DomainName(target))
        if sld is None:
            return None
        for substring, provider in self._cname_substrings:
            if substring in sld:
                return provider
        return None

    def cname_match_any(self, targets: Iterable["DomainName | str"]) -> Optional[str]:
        """First CNAME-matched provider across a CNAME chain."""
        for target in targets:
            provider = self.cname_match(target)
            if provider is not None:
                return provider
        return None

    # -- NS-matching ----------------------------------------------------------

    def ns_match(self, nameserver: "DomainName | str") -> Optional[str]:
        """Provider whose unique substring appears in the NS hostname."""
        name = DomainName(nameserver)
        for label in name.labels[:-1]:  # skip the TLD label
            for substring, provider in self._ns_substrings:
                if substring in label:
                    return provider
        return None

    def ns_match_any(self, nameservers: Iterable["DomainName | str"]) -> Optional[str]:
        """First NS-matched provider across a delegation's NS set."""
        for nameserver in nameservers:
            provider = self.ns_match(nameserver)
            if provider is not None:
                return provider
        return None
