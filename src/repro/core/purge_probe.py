"""Controlled purge-time probe (§V-A-3).

The paper signs its *own* website up for Cloudflare's free plan,
terminates the service the same day, and then probes the nameservers
weekly: the stale record answered until it was purged in the 4th week.
Three trials, three weeks apart, gave the same result.

:class:`PurgeProbe` reproduces the protocol against the simulated
platform: it creates a fresh probe site (outside the studied
population, so the admin model never touches it), onboards, terminates,
and probes weekly while the world keeps running.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..dns.message import Rcode
from ..dns.name import DomainName
from ..dns.records import RecordType
from ..dps.plans import PlanTier
from ..dps.portal import ReroutingMethod
from ..web.origin import OriginServer
from ..world.hosting import HostingProvider
from ..world.internet import SimulatedInternet
from ..world.website import Website

__all__ = ["PurgeTrial", "PurgeProbe"]


@dataclass(frozen=True)
class PurgeTrial:
    """One signup/terminate/probe cycle."""

    trial: int
    plan: PlanTier
    #: Week (1-based, counted from termination) in which the record was
    #: first observed purged; None if never within the probe horizon.
    purged_in_week: Optional[int]
    #: Weeks in which the stale record still answered with the origin.
    answered_weeks: List[int]


class PurgeProbe:
    """Runs the own-site purge-measurement protocol."""

    def __init__(
        self,
        world: SimulatedInternet,
        provider_name: str = "cloudflare",
        max_weeks: int = 10,
    ) -> None:
        self.world = world
        self.provider = world.provider(provider_name)
        self.max_weeks = max_weeks
        self._trial_counter = 0

    def run_trial(
        self,
        plan: PlanTier = PlanTier.FREE,
        rerouting: ReroutingMethod = ReroutingMethod.NS_BASED,
    ) -> PurgeTrial:
        """One full cycle: sign up, terminate same day, probe weekly."""
        self._trial_counter += 1
        site = self._create_probe_site(self._trial_counter)
        origin_ip = site.origin.ip
        site.join(self.provider, rerouting, plan)
        site.leave(informed=True)

        client = self.world.dns_client()
        ns_hostnames = self.provider.nameserver_hostnames()
        answered_weeks: List[int] = []
        purged_week: Optional[int] = None
        for week in range(1, self.max_weeks + 1):
            self.world.engine.run_days(7)
            ns_hostname = ns_hostnames[week % len(ns_hostnames)]
            ns_ip = self._nameserver_ip(ns_hostname)
            response = client.query(ns_ip, site.www, RecordType.A)
            still_answers = (
                response is not None
                and response.rcode is Rcode.NOERROR
                and any(
                    r.rtype is RecordType.A and r.address == origin_ip
                    for r in response.answers
                )
            )
            if still_answers:
                answered_weeks.append(week)
            elif purged_week is None:
                purged_week = week
                break
        return PurgeTrial(
            trial=self._trial_counter,
            plan=plan,
            purged_in_week=purged_week,
            answered_weeks=answered_weeks,
        )

    def run_trials(
        self,
        count: int = 3,
        weeks_between: int = 3,
        plan: PlanTier = PlanTier.FREE,
    ) -> List[PurgeTrial]:
        """The paper's protocol: several trials, spaced apart."""
        trials = []
        for index in range(count):
            if index > 0:
                self.world.engine.run_days(7 * weeks_between)
            trials.append(self.run_trial(plan=plan))
        return trials

    # ------------------------------------------------------------------

    def _create_probe_site(self, trial: int) -> Website:
        hosting: HostingProvider = self.world.hosting_providers[0]
        apex = DomainName(f"repro-probe-{trial}.com")
        origin_ip = hosting.allocate_origin_ip()
        document = HostingProvider.default_document(apex, rank=10**9 + trial)
        origin = OriginServer(apex, origin_ip, document)
        hosting.deploy_origin(origin)
        hosting.host_zone(apex, origin_ip)
        return Website(rank=10**9 + trial, apex=apex, hosting=hosting, origin=origin)

    def _nameserver_ip(self, hostname: DomainName):
        fleet = self.provider.customer_fleet or self.provider.infra_fleet
        return fleet.address_of(hostname)
