"""HTML verification (§IV-C-3).

The primitive behind both Table V and the residual-resolution pipeline:
decide whether a candidate IP address hosts the same site as the one
served through a DPS edge, by downloading the landing page twice and
comparing titles and meta tags.

The comparison is deliberately strict (exact title + exact meta set);
dynamic meta attributes and origin-side firewalls make it fail for some
true origins, so every count built on it is a *lower bound* — the
property the paper states and our tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..dns.name import DomainName
from ..net.ipaddr import IPv4Address
from ..web.html import HtmlDocument
from ..web.http import HttpClient

__all__ = ["VerificationOutcome", "HtmlVerifier"]


@dataclass(frozen=True)
class VerificationOutcome:
    """Result of one verification attempt, with the failure reason."""

    verified: bool
    reason: str

    @classmethod
    def success(cls) -> "VerificationOutcome":
        return cls(True, "match")


class HtmlVerifier:
    """Compares a through-edge fetch with a direct-to-IP fetch.

    ``strictness`` selects the comparison:

    * ``"title-and-meta"`` (default, the paper's §IV-C-3 check) —
      identical title *and* identical meta set; strict, so dynamic meta
      produces false negatives and every count is a lower bound;
    * ``"title-only"`` — identical title; tolerant of dynamic meta, but
      admits false positives for same-titled different sites (the
      ablation DESIGN.md calls out).
    """

    def __init__(self, client: HttpClient, strictness: str = "title-and-meta") -> None:
        if strictness not in ("title-and-meta", "title-only"):
            raise ValueError(f"unknown strictness: {strictness!r}")
        self._client = client
        self.strictness = strictness
        self.attempts = 0

    def state_dict(self) -> dict:
        """Persistent mutable state: attempt counter + HTTP client."""
        return {"attempts": self.attempts, "client": self._client.state_dict()}

    def restore_state(self, state: dict) -> None:
        """Reinstate state captured by :meth:`state_dict`."""
        self.attempts = int(state["attempts"])
        self._client.restore_state(state["client"])

    def verify(
        self,
        host: "DomainName | str",
        reference_ip: "IPv4Address | str",
        candidate_ip: "IPv4Address | str",
    ) -> VerificationOutcome:
        """Is ``candidate_ip`` serving the same site as ``reference_ip``?

        ``reference_ip`` is IP2 in the paper's notation (the DPS edge
        currently serving the site); ``candidate_ip`` is IP1 (the
        suspected origin).  The reference fetch supplies the landing-page
        URL replayed against the candidate.
        """
        self.attempts += 1
        hostname = DomainName(host)
        reference = self._client.get(reference_ip, hostname)
        if reference is None or not reference.ok:
            return VerificationOutcome(False, "reference-fetch-failed")
        landing_path = self._path_of(reference.landing_url) or "/"
        candidate = self._client.get(candidate_ip, hostname, landing_path)
        if candidate is None:
            return VerificationOutcome(False, "candidate-unreachable")
        if not candidate.ok:
            return VerificationOutcome(False, f"candidate-status-{candidate.status}")
        reference_doc = HtmlDocument.parse(reference.body)
        candidate_doc = HtmlDocument.parse(candidate.body)
        if reference_doc.matches(candidate_doc):
            return VerificationOutcome.success()
        if reference_doc.title == candidate_doc.title:
            if self.strictness == "title-only":
                return VerificationOutcome.success()
            # Same title, differing meta: almost always dynamic meta
            # attributes — a missed true origin (§IV-C-3).
            return VerificationOutcome(False, "meta-mismatch")
        return VerificationOutcome(False, "content-mismatch")

    @staticmethod
    def _path_of(url: Optional[str]) -> Optional[str]:
        if url is None:
            return None
        # http://host/path → /path
        without_scheme = url.split("://", 1)[-1]
        slash = without_scheme.find("/")
        return without_scheme[slash:] if slash >= 0 else "/"
