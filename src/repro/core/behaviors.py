"""Usage-behaviour detection (Table IV, §IV-B-3).

Diffs the DPS observations of two consecutive collection days and emits
the behaviours of Table IV, including the compound transitions of the
FSM (Fig. 4) such as JOIN+PAUSE (NONE → OFF within one day).

Multi-CDN customers are filtered out first: a front-end like Cedexis
re-selects the member CDN dynamically, which day-over-day looks like
a provider switch almost every day and would swamp the SWITCH counts.
The filter flags any site whose observed provider changes on at least
``flip_threshold`` distinct day-pairs within the observation window —
how the paper's authors identified them operationally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..world.admin import BehaviorKind
from .status import DpsObservation, DpsStatus

__all__ = ["MeasuredBehavior", "BehaviorDetector", "MultiCdnFilter"]


@dataclass(frozen=True, slots=True)
class MeasuredBehavior:
    """One behaviour inferred from a day-over-day diff."""

    day: int
    www: str
    kind: BehaviorKind
    from_provider: Optional[str] = None
    to_provider: Optional[str] = None


class MultiCdnFilter:
    """Flags sites that flip providers too often to be real switchers."""

    def __init__(self, flip_threshold: int = 3) -> None:
        if flip_threshold < 1:
            raise ValueError("flip_threshold must be at least 1")
        self.flip_threshold = flip_threshold

    def flagged(
        self, observation_days: Sequence[Dict[str, DpsObservation]]
    ) -> Set[str]:
        """Hostnames whose observed provider changed on >= threshold
        day-pairs across the window."""
        flips: Dict[str, int] = {}
        for previous, current in zip(observation_days, observation_days[1:]):
            for www, today in current.items():
                yesterday = previous.get(www)
                if yesterday is None:
                    continue
                if (
                    yesterday.provider is not None
                    and today.provider is not None
                    and yesterday.provider != today.provider
                ):
                    flips[www] = flips.get(www, 0) + 1
        return {www for www, count in flips.items() if count >= self.flip_threshold}


class BehaviorDetector:
    """Emits Table IV behaviours from consecutive observation days."""

    def __init__(self, excluded: Optional[Iterable[str]] = None) -> None:
        self._excluded: Set[str] = set(excluded or ())

    def exclude(self, hostnames: Iterable[str]) -> None:
        """Add hostnames (e.g. multi-CDN sites) to the exclusion set."""
        self._excluded.update(hostnames)

    def diff_pair(
        self,
        previous: Dict[str, DpsObservation],
        current: Dict[str, DpsObservation],
        day: int,
    ) -> List[MeasuredBehavior]:
        """Behaviours between two consecutive observation days."""
        behaviors: List[MeasuredBehavior] = []
        for www, today in current.items():
            if www in self._excluded or not today.is_measured:
                continue
            yesterday = previous.get(www)
            if yesterday is None or not yesterday.is_measured:
                continue
            behaviors.extend(self._transition(www, yesterday, today, day))
        return behaviors

    def diff_series(
        self, observation_days: Sequence[Dict[str, DpsObservation]], first_day: int = 1
    ) -> List[MeasuredBehavior]:
        """Behaviours across a whole daily series.

        UNMEASURED days are data holes, not observations: a site's last
        *measured* observation is carried forward and diffed against its
        next measured one, so a hole never reads as a LEAVE/JOIN pair.
        With no holes the output is identical to pairwise
        :meth:`diff_pair` over consecutive days; a transition observed
        after a hole is attributed to the day it was observed on.
        """
        collected: List[MeasuredBehavior] = []
        carry: Dict[str, DpsObservation] = {}
        for index, current in enumerate(observation_days):
            if index > 0:
                day = first_day + index - 1
                for www, today in current.items():
                    if www in self._excluded or not today.is_measured:
                        continue
                    yesterday = carry.get(www)
                    if yesterday is None:
                        continue
                    collected.extend(self._transition(www, yesterday, today, day))
            for www, observation in current.items():
                if observation.is_measured:
                    carry[www] = observation
        return collected

    # ------------------------------------------------------------------

    def _transition(
        self, www: str, prev: DpsObservation, curr: DpsObservation, day: int
    ) -> List[MeasuredBehavior]:
        def event(kind: BehaviorKind, **kw) -> MeasuredBehavior:
            return MeasuredBehavior(day=day, www=www, kind=kind, **kw)

        p_status, c_status = prev.status, curr.status
        p_prov, c_prov = prev.provider, curr.provider

        if p_status == c_status and p_prov == c_prov:
            return []  # NULL

        if p_status == DpsStatus.NONE:
            if c_status == DpsStatus.ON:
                return [event(BehaviorKind.JOIN, to_provider=c_prov)]
            if c_status == DpsStatus.OFF:
                # Joined and paused the same day (J+P in the FSM).
                return [
                    event(BehaviorKind.JOIN, to_provider=c_prov),
                    event(BehaviorKind.PAUSE, from_provider=c_prov),
                ]
            return []

        if c_status == DpsStatus.NONE:
            return [event(BehaviorKind.LEAVE, from_provider=p_prov)]

        # Both delegated from here on.
        if p_prov == c_prov:
            if p_status == DpsStatus.ON and c_status == DpsStatus.OFF:
                return [event(BehaviorKind.PAUSE, from_provider=p_prov)]
            if p_status == DpsStatus.OFF and c_status == DpsStatus.ON:
                return [event(BehaviorKind.RESUME, to_provider=c_prov)]
            return []

        # Provider changed: a switch, possibly compounded with a pause.
        events = [event(BehaviorKind.SWITCH, from_provider=p_prov, to_provider=c_prov)]
        if c_status == DpsStatus.OFF:
            events.append(event(BehaviorKind.PAUSE, from_provider=c_prov))
        return events

    # ------------------------------------------------------------------

    @staticmethod
    def daily_counts(
        behaviors: Iterable[MeasuredBehavior],
    ) -> Dict[int, Dict[BehaviorKind, int]]:
        """Behaviours per day per kind — the measured Fig. 3 series."""
        table: Dict[int, Dict[BehaviorKind, int]] = {}
        for behavior in behaviors:
            table.setdefault(behavior.day, {kind: 0 for kind in BehaviorKind})
            table[behavior.day][behavior.kind] += 1
        return table

    @staticmethod
    def average_per_day(
        behaviors: Iterable[MeasuredBehavior], num_days: int
    ) -> Dict[BehaviorKind, float]:
        """Average daily count per behaviour kind."""
        totals: Dict[BehaviorKind, int] = {kind: 0 for kind in BehaviorKind}
        for behavior in behaviors:
            totals[behavior.kind] += 1
        return {kind: totals[kind] / num_days for kind in totals}
