"""Pause-period (exposure-window) analysis (§IV-C-1, Fig. 5).

When a customer pauses its DPS, Cloudflare and Incapsula answer name
resolutions with the origin address — an exposure window that lasts
until the RESUME.  This module pairs measured PAUSE behaviours with
their subsequent RESUMEs and computes the duration distribution.

"Overall" pairs a PAUSE with the next RESUME regardless of provider
(covering pause-at-Cloudflare / resume-at-Incapsula sequences); the
per-provider views require both endpoints at the same provider, as in
the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from ..world.admin import BehaviorKind
from .behaviors import MeasuredBehavior

__all__ = ["PauseWindow", "PauseAnalyzer", "empirical_cdf"]


@dataclass(frozen=True)
class PauseWindow:
    """One completed pause: site, provider(s), duration in days."""

    www: str
    paused_day: int
    resumed_day: int
    pause_provider: Optional[str]
    resume_provider: Optional[str]

    @property
    def duration_days(self) -> int:
        """Length of the exposure window."""
        return self.resumed_day - self.paused_day

    @property
    def same_provider(self) -> bool:
        """True when pause and resume happened at the same platform."""
        return (
            self.pause_provider is not None
            and self.pause_provider == self.resume_provider
        )


class PauseAnalyzer:
    """Extracts pause windows from a measured behaviour stream."""

    def windows(self, behaviors: Iterable[MeasuredBehavior]) -> List[PauseWindow]:
        """Pair each PAUSE with the site's next RESUME."""
        by_site: Dict[str, List[MeasuredBehavior]] = {}
        for behavior in behaviors:
            if behavior.kind in (BehaviorKind.PAUSE, BehaviorKind.RESUME):
                by_site.setdefault(behavior.www, []).append(behavior)
        windows: List[PauseWindow] = []
        for www, events in by_site.items():
            events.sort(key=lambda b: b.day)
            open_pause: Optional[MeasuredBehavior] = None
            for event in events:
                if event.kind is BehaviorKind.PAUSE:
                    open_pause = event
                elif open_pause is not None:
                    windows.append(
                        PauseWindow(
                            www=www,
                            paused_day=open_pause.day,
                            resumed_day=event.day,
                            pause_provider=open_pause.from_provider,
                            resume_provider=event.to_provider,
                        )
                    )
                    open_pause = None
        return windows

    def durations(
        self,
        behaviors: Iterable[MeasuredBehavior],
        provider: Optional[str] = None,
    ) -> List[int]:
        """Pause durations in days; restricted to one provider when given
        (both PAUSE and RESUME at that provider, as in Fig. 5)."""
        selected = []
        for window in self.windows(behaviors):
            if provider is None:
                selected.append(window.duration_days)
            elif window.same_provider and window.pause_provider == provider:
                selected.append(window.duration_days)
        return selected

    @staticmethod
    def fraction_longer_than(durations: Sequence[int], days: int) -> float:
        """Fraction of windows strictly longer than ``days`` (the paper's
        "~30% of pause periods are longer than 5 days")."""
        if not durations:
            return 0.0
        return sum(1 for d in durations if d > days) / len(durations)


def empirical_cdf(durations: Sequence[int]) -> List[tuple]:
    """(value, cumulative fraction) pairs — the Fig. 5 curve."""
    if not durations:
        return []
    ordered = sorted(durations)
    n = len(ordered)
    cdf: List[tuple] = []
    for i, value in enumerate(ordered, start=1):
        if cdf and cdf[-1][0] == value:
            cdf[-1] = (value, i / n)
        else:
            cdf.append((value, i / n))
    return cdf
