"""Origin-IP unchanged-rate experiment (Table V, §IV-C-3).

Best practice says: after joining or resuming a DPS, assign the origin a
*new* address, or the previously-exposed one remains a valid attack
target.  The experiment checks compliance:

1. for each measured JOIN/RESUME, take the addresses the site resolved
   to *before* the action (IP1 — typically the origin, since status was
   NONE or OFF);
2. take the addresses after the action (IP2 — DPS edges);
3. HTML-verify each (IP2, IP1) pair; a match means the origin still
   answers on the old address — "IP unchanged".

Counts are per provider; the verification step under-counts (dynamic
meta, firewalled origins), so measured rates are lower bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..world.admin import BehaviorKind
from .behaviors import MeasuredBehavior
from .collector import DailySnapshot
from .htmlverify import HtmlVerifier

__all__ = ["IpUnchangedRow", "IpChangeExperiment"]


@dataclass
class IpUnchangedRow:
    """One provider's row of Table V."""

    provider: str
    join_resume: int = 0
    unchanged: int = 0

    @property
    def percentage(self) -> float:
        """Unchanged rate (0 when no events observed)."""
        if self.join_resume == 0:
            return 0.0
        return self.unchanged / self.join_resume


@dataclass
class IpChangeResult:
    """The full Table V: per-provider rows plus the total."""

    rows: Dict[str, IpUnchangedRow] = field(default_factory=dict)

    def row(self, provider: str) -> IpUnchangedRow:
        return self.rows.setdefault(provider, IpUnchangedRow(provider))

    @property
    def total(self) -> IpUnchangedRow:
        """The aggregate row."""
        total = IpUnchangedRow("total")
        for row in self.rows.values():
            total.join_resume += row.join_resume
            total.unchanged += row.unchanged
        return total


class IpChangeExperiment:
    """Runs the Table V measurement over behaviours and snapshots."""

    def __init__(self, verifier: HtmlVerifier) -> None:
        self._verifier = verifier

    def run(
        self,
        behaviors: Iterable[MeasuredBehavior],
        snapshots: Sequence[DailySnapshot],
        first_day: int = 0,
    ) -> IpChangeResult:
        """Evaluate every JOIN and RESUME (SWITCH excluded, §IV-C-3).

        ``snapshots[i]`` must be the collection for day ``first_day+i``.
        """
        by_day = {snapshot.day: snapshot for snapshot in snapshots}
        result = IpChangeResult()
        for behavior in behaviors:
            if behavior.kind not in (BehaviorKind.JOIN, BehaviorKind.RESUME):
                continue
            provider = behavior.to_provider
            if provider is None:
                continue
            before = by_day.get(behavior.day - 1)
            after = by_day.get(behavior.day)
            if before is None or after is None:
                continue
            prior = before.get(behavior.www)
            current = after.get(behavior.www)
            if prior is None or current is None or not prior.a_records:
                continue
            row = result.row(provider)
            row.join_resume += 1
            if self._ip_unchanged(behavior.www, current.a_records, prior.a_records):
                row.unchanged += 1
        return result

    def _ip_unchanged(
        self,
        www: str,
        edge_ips: Sequence,
        prior_ips: Sequence,
    ) -> bool:
        for edge_ip in edge_ips:
            for prior_ip in prior_ips:
                outcome = self._verifier.verify(www, edge_ip, prior_ip)
                if outcome.verified:
                    return True
        return False
