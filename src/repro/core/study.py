"""The full six-week study (§IV + §V), end to end.

:class:`SixWeekStudy` runs the paper's entire measurement campaign
against a :class:`~repro.world.internet.SimulatedInternet`:

* a warm-up period so provider databases reach the steady state a
  scanner would find in the wild (the paper's week-1 scan already saw
  ~1,500 hidden records, i.e. weeks of accumulated departures);
* daily A/CNAME/NS collection with a cache-purged recursive resolver
  (§IV-B-1), status determination (Table III) and behaviour diffing
  (Table IV) with multi-CDN filtering;
* weekly Cloudflare direct-query sweeps from five vantage points and
  Incapsula CNAME tracking, both feeding the Fig. 8 filter pipeline;
* the Table V origin-IP experiment and the Fig. 5/9 analyses.

The result object carries the measured artifact for every table and
figure, plus ground-truth comparisons that the paper could never make.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..clock import DAYS_PER_WEEK
from ..dps.portal import ReroutingMethod
from ..markers import merge_point, pure_function, shard_entry
from ..net.geo import PAPER_VANTAGE_REGIONS
from ..world.admin import BehaviorEvent, BehaviorKind
from ..world.internet import SimulatedInternet
from .behaviors import BehaviorDetector, MeasuredBehavior, MultiCdnFilter
from .collector import DailySnapshot, DnsRecordCollector
from .exposure import ExposureSummary, ExposureTimeline
from .htmlverify import HtmlVerifier
from .ip_change import IpChangeExperiment, IpChangeResult
from .matching import ProviderMatcher
from .pause import PauseAnalyzer
from .pipeline import FilterPipeline, PipelineReport
from .residual_scan import CloudflareScanner, IncapsulaScanner, NameserverHarvest
from .status import DpsObservation, StatusDeterminer

__all__ = [
    "StudyConfig",
    "StudyReport",
    "StudyRuntime",
    "SixWeekStudy",
    "shard_bounds",
]


@pure_function
def shard_bounds(total: int, shard_index: int, shard_count: int) -> "tuple[int, int]":
    """The half-open ``[start, end)`` slice of shard ``shard_index``.

    Contiguous balanced partition: every shard gets ``total //
    shard_count`` items and the first ``total % shard_count`` shards get
    one extra, so the shards cover the population exactly once, in
    order.  Pure arithmetic — the coordinator and every worker compute
    the same bounds without coordination.
    """
    if shard_count < 1:
        raise ValueError(f"shard_count must be >= 1, got {shard_count}")
    if not 0 <= shard_index < shard_count:
        raise ValueError(
            f"shard_index {shard_index} out of range for {shard_count} shard(s)"
        )
    base, extra = divmod(total, shard_count)
    start = shard_index * base + min(shard_index, extra)
    end = start + base + (1 if shard_index < extra else 0)
    return start, end


@dataclass
class StudyConfig:
    """Campaign parameters (defaults follow the paper)."""

    #: Days of pre-study world dynamics.  Long enough that provider
    #: databases hold a steady-state population of stale records across
    #: the plan-mixed purge horizons (28-56 days), as the wild would.
    warmup_days: int = 56
    study_days: int = 42
    scan_every_days: int = DAYS_PER_WEEK
    vantage_regions: List[str] = field(
        default_factory=lambda: list(PAPER_VANTAGE_REGIONS)
    )
    multicdn_flip_threshold: int = 3
    #: Collect Table V / pause / Fig. 3 data (disable to run §V only).
    run_usage_dynamics: bool = True
    #: Run the §V weekly scans (disable to run §IV only).
    run_residual_scans: bool = True
    #: HTML-verification strictness: "title-and-meta" (the paper's
    #: comparison, a strict lower bound) or "title-only" (tolerant of
    #: dynamic meta; admits false positives) — the ablation DESIGN.md
    #: calls out.
    verifier_strictness: str = "title-and-meta"


@dataclass
class StudyReport:
    """Everything the campaign measured, organised by paper artifact."""

    config: StudyConfig
    population_size: int
    scale_factor: float

    # §IV raw series
    snapshots: List[DailySnapshot] = field(default_factory=list)
    observations: List[Dict[str, DpsObservation]] = field(default_factory=list)
    behaviors: List[MeasuredBehavior] = field(default_factory=list)
    multicdn_flagged: Set[str] = field(default_factory=set)

    # Fig. 2 / §IV-B-2
    adoption_by_provider: Dict[str, float] = field(default_factory=dict)
    overall_adoption_rate: float = 0.0
    top_sites_adoption_rate: float = 0.0
    #: Relative adoption growth over the study, measured against the
    #: first day with a nonzero adopter count.  ``None`` means the
    #: baseline never existed (no site adopted on any day) — distinct
    #: from ``0.0``, which means adoption genuinely did not grow.
    adoption_growth: Optional[float] = None

    # Fig. 3 / Table IV
    behavior_daily_counts: Dict[int, Dict[BehaviorKind, int]] = field(default_factory=dict)
    behavior_averages: Dict[BehaviorKind, float] = field(default_factory=dict)

    # Fig. 5
    pause_durations_overall: List[int] = field(default_factory=list)
    pause_durations_by_provider: Dict[str, List[int]] = field(default_factory=dict)

    # Fig. 6
    cloudflare_ns_share: float = 0.0
    cloudflare_cname_share: float = 0.0

    # Fig. 7
    harvested_nameservers: int = 0
    scan_pop_query_counts: Dict[str, int] = field(default_factory=dict)

    # Table V
    ip_change: Optional[IpChangeResult] = None

    # Table VI / Fig. 8 / Fig. 9
    cloudflare_weekly: List[PipelineReport] = field(default_factory=list)
    incapsula_weekly: List[PipelineReport] = field(default_factory=list)
    cloudflare_exposure: Optional[ExposureSummary] = None

    # Degradation bookkeeping (all empty/zero on a fault-free run):
    # per-day UNMEASURED site counts, the days that were partial, weekly
    # Cloudflare sweeps skipped because no nameserver address resolved,
    # hostnames per week whose sweep was throttled from every vantage
    # point (partial scans — unmeasured, never recorded as absent), and
    # the nameservers still quarantined when the campaign ended.
    unmeasured_daily_counts: List[int] = field(default_factory=list)
    partial_days: List[int] = field(default_factory=list)
    skipped_scan_weeks: List[int] = field(default_factory=list)
    partial_scan_weeks: Dict[int, int] = field(default_factory=dict)
    quarantined_nameservers: List[str] = field(default_factory=list)

    # Attack plane (all empty on an attack-free run): the campaign's
    # event schedule and the per-event / per-wave counters, copied from
    # the world's attack plane at finalise.
    attack_profile: Optional[str] = None
    attack_events: List[Dict[str, object]] = field(default_factory=list)
    attack_tallies: Dict[str, int] = field(default_factory=dict)

    @property
    def total_unmeasured(self) -> int:
        """Site-days lost to exhausted retry budgets across the study."""
        return sum(self.unmeasured_daily_counts)

    # Ground truth (unavailable to the paper; used for validation)
    ground_truth_events: List[BehaviorEvent] = field(default_factory=list)

    # -- Table VI totals ------------------------------------------------

    @staticmethod
    @merge_point
    def _totals(weekly: List[PipelineReport]) -> Dict[str, int]:
        hidden: Set[str] = set()
        verified: Set[str] = set()
        for report in weekly:
            hidden.update(report.hidden_websites())  # repro: allow[REP061] -- folds into sets and reports only their sizes; arrival order cannot reach the output
            verified.update(report.verified_websites())
        return {"hidden": len(hidden), "verified": len(verified)}

    @property
    def cloudflare_totals(self) -> Dict[str, int]:
        """Distinct hidden records / verified origins across all weeks."""
        return self._totals(self.cloudflare_weekly)

    @property
    def incapsula_totals(self) -> Dict[str, int]:
        """Distinct hidden records / verified origins across all weeks."""
        return self._totals(self.incapsula_weekly)

    def ground_truth_daily_average(self) -> Dict[BehaviorKind, float]:
        """Planted behaviour rates over the study window."""
        totals = {kind: 0 for kind in BehaviorKind}
        for event in self.ground_truth_events:
            totals[event.kind] += 1
        days = max(1, self.config.study_days - 1)
        return {kind: totals[kind] / days for kind in totals}


@dataclass
class StudyRuntime:
    """The campaign's complete mutable loop state, made explicit.

    Everything :meth:`SixWeekStudy.run_day` reads or writes between
    days lives here — the partially filled report, the persistent
    measurement objects, and the ``day_index`` cursor (the next study
    day to run).  Making the loop state a first-class object is what
    lets the checkpoint plane serialize a run at a barrier and a resumed
    process rebuild the exact same trajectory.
    """

    report: StudyReport
    study_start_day: int
    day_index: int
    hostnames: List[str]
    collection_resolver: object
    collector: DnsRecordCollector
    verifier: HtmlVerifier
    harvest: NameserverHarvest
    exposure: ExposureTimeline
    vantage_clients: List
    scan_pop_totals: Dict[str, int]
    incap_scanner: Optional[IncapsulaScanner] = None
    cf_pipeline: Optional[FilterPipeline] = None
    incap_pipeline: Optional[FilterPipeline] = None
    #: Which slice of the population this runtime measures.  A
    #: monolithic run is the degenerate shard 0-of-1 with offset 0;
    #: shard workers carry their index so the weekly scan can rotate
    #: vantage points by *global* hostname position.
    shard_index: int = 0
    shard_count: int = 1
    shard_offset: int = 0
    #: Scan-time harvest override.  The weekly Cloudflare sweep needs
    #: the nameservers harvested across the *whole* population (the
    #: paper's 391 names came from every delegation observed, §V-A-1);
    #: a shard's own harvest covers only its slice.  The shard runner
    #: sets this to the merged, broadcast harvest before each scan day;
    #: ``None`` (the monolithic case) falls back to ``harvest``.
    scan_harvest: Optional[NameserverHarvest] = None

    @property
    def finished(self) -> bool:
        """True once every study day has run."""
        return self.day_index >= self.report.config.study_days


class SixWeekStudy:
    """Runs the whole campaign."""

    def __init__(
        self, world: SimulatedInternet, config: Optional[StudyConfig] = None
    ) -> None:
        self.world = world
        self.config = config or StudyConfig()
        self.matcher = ProviderMatcher(world.specs, world.routeviews)
        shared_ips = frozenset(
            ip
            for provider in world.providers.values()
            for ip in provider.offnet_edge_ips
        )
        self.determiner = StatusDeterminer(self.matcher, shared_ips)

    # ------------------------------------------------------------------

    def run(self) -> StudyReport:
        """Execute warm-up, the daily campaign, and the analyses."""
        runtime = self.begin()
        while not runtime.finished:
            self.run_day(runtime)
        return self.finalise(runtime)

    def begin(self, shard_index: int = 0, shard_count: int = 1) -> StudyRuntime:
        """Warm the world up and build the campaign's measurement state.

        Returns the :class:`StudyRuntime` positioned at day 0 (checkpoint
        barrier 0: post-warmup, nothing measured yet).

        With ``shard_count > 1`` the runtime measures only shard
        ``shard_index``'s contiguous slice of the population (see
        :func:`shard_bounds`); the world itself is always the full one —
        its dynamics are global and measurement-independent, so every
        shard replays the identical world and observes its own sites.
        """
        world, config = self.world, self.config
        start, end = shard_bounds(len(world.population), shard_index, shard_count)
        report = StudyReport(
            config=config,
            population_size=len(world.population),
            scale_factor=world.config.scale_factor,
        )

        world.engine.run_days(config.warmup_days)

        collection_resolver = world.make_resolver()
        verifier = HtmlVerifier(
            world.http_client(config.vantage_regions[0]),
            strictness=config.verifier_strictness,
        )

        incap_scanner = None
        cf_pipeline = incap_pipeline = None
        if config.run_residual_scans and "incapsula" in world.providers:
            incap_scanner = IncapsulaScanner(world.make_resolver(), self.matcher)
            incap_pipeline = FilterPipeline(
                world.provider("incapsula").prefixes, world.make_resolver(), verifier
            )
        if config.run_residual_scans and "cloudflare" in world.providers:
            cf_pipeline = FilterPipeline(
                world.provider("cloudflare").prefixes, world.make_resolver(), verifier
            )

        hostnames = [str(site.www) for site in world.population]
        return StudyRuntime(
            report=report,
            study_start_day=world.clock.day,
            day_index=0,
            hostnames=hostnames[start:end],
            collection_resolver=collection_resolver,
            collector=DnsRecordCollector(collection_resolver),
            verifier=verifier,
            harvest=NameserverHarvest(),
            exposure=ExposureTimeline(),
            vantage_clients=[
                world.dns_client(region) for region in config.vantage_regions
            ],
            scan_pop_totals={},
            incap_scanner=incap_scanner,
            cf_pipeline=cf_pipeline,
            incap_pipeline=incap_pipeline,
            shard_index=shard_index,
            shard_count=shard_count,
            shard_offset=start,
        )

    @shard_entry
    def run_day(self, runtime: StudyRuntime) -> None:
        """One study day: collect, observe, scan (weekly), advance.

        Advances ``runtime.day_index`` and the world by one day; calling
        it ``config.study_days`` times from a fresh :meth:`begin` runtime
        reproduces the monolithic loop exactly.  The three phases are
        exposed separately (:meth:`collect_day`, :meth:`scan_day`,
        :meth:`advance_day`) so the shard runner can interpose the
        harvest broadcast between collection and the weekly scan; this
        method is their exact composition.
        """
        self.collect_day(runtime)
        if self.scan_due(runtime):
            self.scan_day(runtime)
        self.advance_day(runtime)

    def scan_due(self, runtime: StudyRuntime) -> bool:
        """Whether the current study day carries a weekly §V scan."""
        return (
            self.config.run_residual_scans
            and runtime.day_index % self.config.scan_every_days == 0
        )

    def collect_day(self, runtime: StudyRuntime) -> None:
        """Phase 1: daily A/CNAME/NS collection over the shard's slice."""
        report = runtime.report
        day = self.world.clock.day
        snapshot = runtime.collector.collect(runtime.hostnames, day)
        report.snapshots.append(snapshot)
        report.observations.append(
            {
                www: self.determiner.observe(domain_snapshot)
                for www, domain_snapshot in snapshot.domains.items()
            }
        )
        report.unmeasured_daily_counts.append(snapshot.unmeasured_count)
        if snapshot.is_partial:
            report.partial_days.append(day)
        runtime.harvest.ingest([snapshot])
        if runtime.incap_scanner is not None:
            runtime.incap_scanner.ingest([snapshot])

    def scan_day(self, runtime: StudyRuntime) -> None:
        """Phase 2 (weekly): the §V residual-resolution sweeps."""
        world, config = self.world, self.config
        report = runtime.report
        day_index = runtime.day_index
        cf_provider = world.providers.get("cloudflare")
        week = day_index // config.scan_every_days
        harvest = (
            runtime.scan_harvest
            if runtime.scan_harvest is not None
            else runtime.harvest
        )
        ns_ips: List = []
        if runtime.cf_pipeline is not None:
            if len(harvest) > 0:
                ns_ips = harvest.resolve_addresses(world.make_resolver())
            if not ns_ips:
                # The sweep cannot run this week — either nothing has
                # been harvested yet (no cloudflare delegation observed
                # before the first scan day) or every harvested name
                # failed to resolve (outage / exhausted budget).  Both
                # paths record the skip; silently dropping the week
                # made the weekly series lie about its own coverage.
                report.skipped_scan_weeks.append(week)
        if ns_ips:
            scanner = CloudflareScanner(
                ns_ips,
                runtime.vantage_clients,
                rng=world.rng.fork(f"cf-scan-week-{week}"),
            )
            fleet = cf_provider.customer_fleet if cf_provider else None
            before = fleet.pop_query_counts() if fleet else {}
            retrieved = scanner.scan(
                runtime.hostnames, start_index=runtime.shard_offset
            )
            if scanner.queries_throttled:
                # Provider defenses refused part of this week's sweep
                # from every vantage point: a *partial* scan.  The count
                # is recorded so the weekly series carries its own
                # coverage; the throttled hostnames simply go unmeasured
                # this week — never recorded as departed.
                report.partial_scan_weeks[week] = (
                    report.partial_scan_weeks.get(week, 0)
                    + scanner.queries_throttled
                )
            if fleet is not None:
                for pop, count in fleet.pop_query_counts().items():
                    delta = count - before.get(pop, 0)
                    if delta:
                        runtime.scan_pop_totals[pop] = (
                            runtime.scan_pop_totals.get(pop, 0) + delta
                        )
            weekly = runtime.cf_pipeline.run(retrieved, "cloudflare", week)
            report.cloudflare_weekly.append(weekly)
            runtime.exposure.record_week(weekly.verified_websites())
        if runtime.incap_scanner is not None and runtime.incap_pipeline is not None:
            retrieved = runtime.incap_scanner.scan()
            report.incapsula_weekly.append(
                runtime.incap_pipeline.run(retrieved, "incapsula", week)
            )

    def advance_day(self, runtime: StudyRuntime) -> None:
        """Phase 3: advance the world and the day cursor."""
        self.world.engine.run_day()
        runtime.day_index = runtime.day_index + 1

    def finalise(self, runtime: StudyRuntime) -> StudyReport:
        """The post-loop analyses, turning the runtime into the report."""
        world, config = self.world, self.config
        report = runtime.report
        report.quarantined_nameservers = [
            address
            for address, _, _ in runtime.collection_resolver.quarantine.snapshot()
        ]
        attacks = world.fabric.attack_plane
        if attacks is not None:
            report.attack_profile = attacks.name
            report.attack_events = [event.as_dict() for event in attacks.events]
            report.attack_tallies = {
                key: attacks.tallies[key] for key in sorted(attacks.tallies)
            }
        self._analyse_usage_dynamics(
            report, runtime.study_start_day, runtime.verifier
        )
        self._analyse_adoption(report)
        if config.run_residual_scans:
            report.cloudflare_exposure = runtime.exposure.summary()
            report.harvested_nameservers = len(runtime.harvest)
            # Canonical (sorted) key order: the runtime dict's insertion
            # order is first-seen order, which depends on how the
            # campaign executed (fresh, resumed, or merged from shards)
            # even though the totals themselves never do.
            report.scan_pop_query_counts = {
                pop: runtime.scan_pop_totals[pop]
                for pop in sorted(runtime.scan_pop_totals)
            }
        # The observable ground-truth window.  Snapshots cover days
        # [start, start + study_days); an event stamped on day d happens
        # *after* day d's snapshot and is first visible in day d+1's, so
        # events from the final run_day (day start + study_days - 1)
        # never appear in any snapshot diff.  The window must exclude
        # them — and the days past the study that later callers may have
        # advanced the world through — or the ground-truth series claims
        # events no measurement could recover.  The bound matches
        # :meth:`StudyReport.ground_truth_daily_average`'s
        # ``study_days - 1`` divisor: the window spans exactly that many
        # observable days.
        last_observable = runtime.study_start_day + config.study_days - 1
        report.ground_truth_events = [
            event
            for event in world.engine.events
            if runtime.study_start_day <= event.day < last_observable
        ]
        return report

    # ------------------------------------------------------------------

    @merge_point
    def _analyse_usage_dynamics(
        self, report: StudyReport, study_start_day: int, verifier: HtmlVerifier
    ) -> None:
        if not self.config.run_usage_dynamics or len(report.observations) < 2:
            return
        flagged = MultiCdnFilter(self.config.multicdn_flip_threshold).flagged(
            report.observations
        )
        report.multicdn_flagged = flagged
        detector = BehaviorDetector(excluded=flagged)
        report.behaviors = detector.diff_series(
            report.observations, first_day=study_start_day + 1
        )
        report.behavior_daily_counts = BehaviorDetector.daily_counts(report.behaviors)
        report.behavior_averages = BehaviorDetector.average_per_day(
            report.behaviors, num_days=len(report.observations) - 1
        )

        analyzer = PauseAnalyzer()
        report.pause_durations_overall = analyzer.durations(report.behaviors)
        for provider in ("cloudflare", "incapsula"):
            report.pause_durations_by_provider[provider] = analyzer.durations(
                report.behaviors, provider=provider
            )

        experiment = IpChangeExperiment(verifier)
        report.ip_change = experiment.run(report.behaviors, report.snapshots)

    @merge_point
    def _analyse_adoption(self, report: StudyReport) -> None:
        if not report.observations:
            return
        num_days = len(report.observations)
        totals: Dict[str, int] = {}
        adopted_per_day: List[int] = []
        top_cutoff = max(1, int(report.population_size * self.world.config.top_sites_fraction))
        top_sites = {
            str(site.www) for site in self.world.population if site.rank <= top_cutoff
        }
        top_adopted_per_day: List[int] = []
        for day_observations in report.observations:
            adopted = 0
            top_adopted = 0
            for www, observation in sorted(day_observations.items()):
                if observation.provider is not None:
                    adopted += 1
                    totals[observation.provider] = totals.get(observation.provider, 0) + 1
                    if www in top_sites:
                        top_adopted += 1
            adopted_per_day.append(adopted)  # repro: allow[REP061] -- report.observations is in day order by construction; the per-day series must preserve it
            top_adopted_per_day.append(top_adopted)
        report.adoption_by_provider = {
            provider: count / num_days for provider, count in sorted(totals.items())
        }
        report.overall_adoption_rate = (
            sum(adopted_per_day) / num_days / report.population_size
        )
        report.top_sites_adoption_rate = (
            sum(top_adopted_per_day) / num_days / len(top_sites) if top_sites else 0.0
        )
        # Growth is measured against the first day with a nonzero
        # adopter count, not blindly against day 0: a population that
        # grows 0 -> 50 adopters must not report zero growth.  When no
        # day ever has an adopter the baseline is undefined and the
        # growth stays None.
        baseline = next((count for count in adopted_per_day if count > 0), None)
        if baseline is not None:
            report.adoption_growth = (adopted_per_day[-1] - baseline) / baseline

        # Fig. 6: Cloudflare customers by rerouting mechanism.
        ns_count = cname_count = 0
        for day_observations in report.observations:
            for observation in day_observations.values():  # repro: allow[REP061] -- commutative counters; iteration order cannot affect the sums
                if observation.provider != "cloudflare":
                    continue
                if observation.rerouting is ReroutingMethod.CNAME_BASED:
                    cname_count += 1
                elif observation.rerouting is ReroutingMethod.NS_BASED:
                    ns_count += 1
        total_cf = ns_count + cname_count
        if total_cf:
            report.cloudflare_ns_share = ns_count / total_cf
            report.cloudflare_cname_share = cname_count / total_cf
