"""DPS status and rerouting-mechanism determination (Table III, §IV-B-2).

Given one day's A/CNAME/NS snapshot of a site and the provider matcher:

* **ON** — an A record falls inside a provider's ranges (the traffic is
  actually rerouted; none of the studied providers web-host, so a
  provider address means protection is in effect);
* **OFF** — the domain is delegated to a DPS (CNAME-matched with any
  provider, or NS-matched with Cloudflare) but the A record points at a
  non-DPS address — typically the origin;
* **NONE** — no DPS involvement detected.

The Akamai/CDNetworks shared-IP quirk (footnote 6) is handled the way
the paper handled it: cases where a CNAME matches one of those two
providers but the address sits in another organisation's ranges can be
reclassified as ON when the address appears in a caller-supplied set of
known off-net edge addresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

from ..dps.portal import ReroutingMethod
from ..net.ipaddr import IPv4Address
from .collector import DomainSnapshot
from .matching import ProviderMatcher

__all__ = ["DpsStatus", "DpsObservation", "StatusDeterminer"]

#: Providers whose NS-matching indicates delegation-based DPS (Table III
#: names Cloudflare only).
_NS_REROUTING_PROVIDERS = frozenset({"cloudflare"})

#: Providers affected by the shared/off-net edge-address quirk.
_SHARED_IP_PROVIDERS = frozenset({"akamai", "cdnetworks"})


class DpsStatus:
    """The three statuses of Table III, plus an explicit data hole.

    ``UNMEASURED`` is not part of the paper's taxonomy: it marks a day
    where resolution gave up inside its retry budget, so the site's
    status that day is *unknown* — distinct from NONE, which is a
    positive observation of no DPS involvement.  Behaviour detection
    skips UNMEASURED days (carry-forward) rather than reading them as
    protection changes.
    """

    ON = "ON"
    OFF = "OFF"
    NONE = "NONE"
    UNMEASURED = "UNMEASURED"


@dataclass(frozen=True, slots=True)
class DpsObservation:
    """What the measurement concluded about one site on one day."""

    www: str
    day: int
    status: str
    provider: Optional[str] = None
    rerouting: Optional[ReroutingMethod] = None

    @property
    def is_on(self) -> bool:
        """Protection observed in effect."""
        return self.status == DpsStatus.ON

    @property
    def is_delegated(self) -> bool:
        """ON or OFF — the domain is attached to some platform."""
        return self.status in (DpsStatus.ON, DpsStatus.OFF)

    @property
    def is_measured(self) -> bool:
        """False for an UNMEASURED data hole."""
        return self.status != DpsStatus.UNMEASURED


class StatusDeterminer:
    """Applies Table III to snapshots."""

    def __init__(
        self,
        matcher: ProviderMatcher,
        shared_edge_ips: Optional[FrozenSet[IPv4Address]] = None,
    ) -> None:
        self._matcher = matcher
        self._shared_edge_ips = shared_edge_ips or frozenset()

    def observe(self, snapshot: DomainSnapshot) -> DpsObservation:
        """Classify one snapshot."""
        if not snapshot.measured:
            return DpsObservation(
                www=str(snapshot.www),
                day=snapshot.day,
                status=DpsStatus.UNMEASURED,
            )
        a_provider = self._matcher.a_match_any(snapshot.a_records)
        cname_provider = self._matcher.cname_match_any(snapshot.cnames)
        ns_provider = self._matcher.ns_match_any(snapshot.ns_targets)

        if a_provider is not None:
            return DpsObservation(
                www=str(snapshot.www),
                day=snapshot.day,
                status=DpsStatus.ON,
                provider=a_provider,
                rerouting=self._infer_rerouting(a_provider, cname_provider, ns_provider),
            )

        # Footnote-6 correction: a CNAME match against Akamai/CDNetworks
        # whose address is a known off-net edge is really ON.
        if (
            cname_provider in _SHARED_IP_PROVIDERS
            and any(ip in self._shared_edge_ips for ip in snapshot.a_records)
        ):
            return DpsObservation(
                www=str(snapshot.www),
                day=snapshot.day,
                status=DpsStatus.ON,
                provider=cname_provider,
                rerouting=ReroutingMethod.CNAME_BASED,
            )

        delegated_provider = cname_provider
        if delegated_provider is None and ns_provider in _NS_REROUTING_PROVIDERS:
            delegated_provider = ns_provider
        if delegated_provider is not None:
            rerouting = (
                ReroutingMethod.CNAME_BASED
                if cname_provider is not None
                else ReroutingMethod.NS_BASED
            )
            return DpsObservation(
                www=str(snapshot.www),
                day=snapshot.day,
                status=DpsStatus.OFF,
                provider=delegated_provider,
                rerouting=rerouting,
            )
        return DpsObservation(www=str(snapshot.www), day=snapshot.day, status=DpsStatus.NONE)

    def _infer_rerouting(
        self,
        a_provider: str,
        cname_provider: Optional[str],
        ns_provider: Optional[str],
    ) -> ReroutingMethod:
        """§IV-B-2: CNAME-matching present → CNAME-based; otherwise
        NS-based for Cloudflare and A-based for the rest (Akamai)."""
        if cname_provider == a_provider:
            return ReroutingMethod.CNAME_BASED
        if ns_provider == a_provider and a_provider in _NS_REROUTING_PROVIDERS:
            return ReroutingMethod.NS_BASED
        return ReroutingMethod.A_BASED
