"""Study-report export.

Serialises a :class:`~repro.core.study.StudyReport` to a JSON-compatible
dictionary (and back to disk), so campaigns can be archived, diffed
across library versions, and post-processed outside Python.  The export
keeps the per-artifact aggregates — everything EXPERIMENTS.md tabulates —
and omits the bulky raw snapshot series.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict

from ..io import atomic_write_json
from ..world.admin import BehaviorKind
from .study import StudyReport

__all__ = ["report_to_dict", "save_report", "load_report_dict"]

_SCHEMA_VERSION = 3


def report_to_dict(report: StudyReport) -> Dict[str, Any]:
    """Flatten a study report into JSON-compatible primitives."""
    ip_change = None
    if report.ip_change is not None:
        ip_change = {
            "rows": {
                provider: {
                    "join_resume": row.join_resume,
                    "unchanged": row.unchanged,
                    "percentage": row.percentage,
                }
                for provider, row in report.ip_change.rows.items()
            },
            "total": {
                "join_resume": report.ip_change.total.join_resume,
                "unchanged": report.ip_change.total.unchanged,
                "percentage": report.ip_change.total.percentage,
            },
        }
    exposure = None
    if report.cloudflare_exposure is not None:
        summary = report.cloudflare_exposure
        exposure = {
            "weeks": summary.weeks,
            "total_distinct": summary.total_distinct,
            "always_exposed": summary.always_exposed,
            "bounded_exposures": summary.bounded_exposures,
            "new_per_week": {str(k): v for k, v in summary.new_per_week.items()},
        }
    return {
        "schema_version": _SCHEMA_VERSION,
        "population_size": report.population_size,
        "scale_factor": report.scale_factor,
        "config": {
            "warmup_days": report.config.warmup_days,
            "study_days": report.config.study_days,
            "scan_every_days": report.config.scan_every_days,
            "vantage_regions": list(report.config.vantage_regions),
            "verifier_strictness": report.config.verifier_strictness,
        },
        "fig2": {
            "adoption_by_provider": dict(report.adoption_by_provider),
            "overall_adoption_rate": report.overall_adoption_rate,
            "top_sites_adoption_rate": report.top_sites_adoption_rate,
            "adoption_growth": report.adoption_growth,
        },
        "fig3": {
            "behavior_averages": {
                kind.name: report.behavior_averages.get(kind, 0.0)
                for kind in BehaviorKind
            },
            "ground_truth_averages": {
                kind.name: value
                for kind, value in report.ground_truth_daily_average().items()
            },
        },
        "fig5": {
            "pause_durations_overall": list(report.pause_durations_overall),
            "pause_durations_by_provider": {
                provider: list(durations)
                for provider, durations in report.pause_durations_by_provider.items()
            },
        },
        "fig6": {
            "cloudflare_ns_share": report.cloudflare_ns_share,
            "cloudflare_cname_share": report.cloudflare_cname_share,
        },
        "fig7": {
            "harvested_nameservers": report.harvested_nameservers,
            "scan_pop_query_counts": dict(report.scan_pop_query_counts),
        },
        "table5": ip_change,
        "table6": {
            "cloudflare_weekly": [
                {
                    "week": weekly.week,
                    "retrieved": weekly.retrieved,
                    "dropped_ip_filter": weekly.dropped_ip_filter,
                    "dropped_a_filter": weekly.dropped_a_filter,
                    "hidden": weekly.hidden_count,
                    "verified": weekly.verified_count,
                }
                for weekly in report.cloudflare_weekly
            ],
            "incapsula_weekly": [
                {
                    "week": weekly.week,
                    "hidden": weekly.hidden_count,
                    "verified": weekly.verified_count,
                }
                for weekly in report.incapsula_weekly
            ],
            "cloudflare_totals": dict(report.cloudflare_totals),
            "incapsula_totals": dict(report.incapsula_totals),
        },
        "fig9": exposure,
        "degradation": {
            "unmeasured_daily_counts": list(report.unmeasured_daily_counts),
            "total_unmeasured": report.total_unmeasured,
            "partial_days": list(report.partial_days),
            "skipped_scan_weeks": list(report.skipped_scan_weeks),
            "partial_scan_weeks": {
                str(week): report.partial_scan_weeks[week]
                for week in sorted(report.partial_scan_weeks)
            },
            "quarantined_nameservers": list(report.quarantined_nameservers),
        },
        "attacks": (
            {
                "profile": report.attack_profile,
                "events": list(report.attack_events),
                "tallies": dict(report.attack_tallies),
            }
            if report.attack_profile is not None
            else None
        ),
        "multicdn_flagged": sorted(report.multicdn_flagged),
    }


def save_report(report: StudyReport, path: "str | Path") -> Path:
    """Write the report as pretty-printed JSON; returns the path."""
    return atomic_write_json(path, report_to_dict(report), trailing_newline=False)


def load_report_dict(path: "str | Path") -> Dict[str, Any]:
    """Read an exported report back as a dictionary."""
    return json.loads(Path(path).read_text())
