"""Statistics helpers for calibration analysis.

Measurement counts in this study are Poisson/binomial at heart; judging
"did we reproduce the paper's number?" needs noise-aware comparisons,
not equality.  This module provides the small toolbox the benches and
the calibration report use: Wilson intervals for proportions, Poisson
bands for counts, z-scores against targets, and an empirical-CDF
distance for Fig. 5-style curves.

Implemented from first principles (no scipy dependency) and tested
property-style.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

__all__ = [
    "wilson_interval",
    "poisson_interval",
    "count_zscore",
    "proportion_zscore",
    "ks_distance",
    "CalibrationCheck",
    "calibration_table",
]

_Z95 = 1.959963984540054  # two-sided 95%


def wilson_interval(successes: int, trials: int, z: float = _Z95) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Behaves sensibly at small n and extreme proportions, unlike the
    normal approximation.  Returns (low, high); (0, 1) when trials = 0.
    """
    if trials < 0 or successes < 0 or successes > trials:
        raise ValueError(f"invalid binomial counts: {successes}/{trials}")
    if trials == 0:
        return (0.0, 1.0)
    p = successes / trials
    denom = 1 + z * z / trials
    centre = (p + z * z / (2 * trials)) / denom
    margin = (z / denom) * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
    low = 0.0 if successes == 0 else max(0.0, centre - margin)
    high = 1.0 if successes == trials else min(1.0, centre + margin)
    # Guard against floating-point loss pushing the bound past p itself.
    return (min(low, p), max(high, p))


def poisson_interval(count: int, z: float = _Z95) -> Tuple[float, float]:
    """Approximate central interval for a Poisson mean given one count.

    Uses the square-root (variance-stabilising) transform, which is
    accurate enough for calibration bands and exact at large counts.
    """
    if count < 0:
        raise ValueError(f"negative count: {count}")
    root = math.sqrt(count)
    low = max(0.0, root - z / 2) ** 2
    high = (root + z / 2) ** 2
    return (low, high)


def count_zscore(observed: int, expected: float) -> float:
    """How many Poisson standard deviations ``observed`` sits from
    ``expected``.  Zero expectation with zero observed is a perfect 0."""
    if expected < 0:
        raise ValueError(f"negative expectation: {expected}")
    if expected == 0:
        return 0.0 if observed == 0 else math.inf
    return (observed - expected) / math.sqrt(expected)


def proportion_zscore(successes: int, trials: int, target: float) -> float:
    """z-score of an observed proportion against a target proportion."""
    if not 0.0 <= target <= 1.0:
        raise ValueError(f"target out of range: {target}")
    if trials == 0:
        return 0.0
    se = math.sqrt(max(target * (1 - target), 1e-12) / trials)
    return (successes / trials - target) / se


def ks_distance(sample_a: Sequence[float], sample_b: Sequence[float]) -> float:
    """Two-sample Kolmogorov-Smirnov statistic (max CDF gap).

    Used to compare pause-duration distributions across configurations.
    Returns 0.0 when either sample is empty.
    """
    if not sample_a or not sample_b:
        return 0.0
    a = sorted(sample_a)
    b = sorted(sample_b)
    na, nb = len(a), len(b)
    i = j = 0
    distance = 0.0
    while i < na and j < nb:
        value = a[i] if a[i] <= b[j] else b[j]
        while i < na and a[i] == value:
            i += 1
        while j < nb and b[j] == value:
            j += 1
        distance = max(distance, abs(i / na - j / nb))
    # One sample may be exhausted; the largest remaining gap is at the
    # start of the tail.
    return max(distance, abs(i / na - j / nb))


@dataclass(frozen=True)
class CalibrationCheck:
    """One measured-vs-paper comparison with its noise-aware verdict."""

    name: str
    paper: float
    measured: float
    zscore: float

    @property
    def within_noise(self) -> bool:
        """True when the deviation is within ±3σ."""
        return abs(self.zscore) <= 3.0


def calibration_table(
    checks: Dict[str, Tuple[float, float, float]]
) -> List[CalibrationCheck]:
    """Build checks from ``name -> (paper, measured, zscore)`` triples."""
    return [
        CalibrationCheck(name=name, paper=paper, measured=measured, zscore=z)
        for name, (paper, measured, z) in checks.items()
    ]
