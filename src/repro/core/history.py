"""Passive-DNS / IP-history database.

The first origin-exposure vector of Table I: *"Historical DNS record
databases may contain possible origin IP addresses."*  Commercial
passive-DNS services aggregate resolutions observed before a site moved
behind a DPS; an attacker replays that history looking for pre-DPS
origin addresses.

:class:`PassiveDnsDb` plays that role for the simulation: it ingests
daily collection snapshots (as a passive sensor would) and answers
history queries.  ``candidate_origins`` returns historical addresses
outside every studied provider's ranges — the attacker's shortlist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..dns.name import DomainName
from ..net.ipaddr import IPv4Address
from .collector import DailySnapshot
from .matching import ProviderMatcher

__all__ = ["HistoryEntry", "PassiveDnsDb"]


@dataclass(frozen=True)
class HistoryEntry:
    """One observed resolution: day and the answer set."""

    day: int
    addresses: Tuple[IPv4Address, ...]


class PassiveDnsDb:
    """Accumulates observed resolutions per hostname."""

    def __init__(self) -> None:
        self._history: Dict[str, List[HistoryEntry]] = {}
        self.observations = 0

    # -- ingestion -------------------------------------------------------

    def observe(self, snapshot: DailySnapshot) -> None:
        """Record one day's resolutions (deduplicating repeats)."""
        for domain in snapshot:
            if not domain.a_records:
                continue
            entries = self._history.setdefault(str(domain.www), [])
            addresses = tuple(domain.a_records)
            if entries and entries[-1].addresses == addresses:
                continue  # unchanged since last observation
            entries.append(HistoryEntry(day=domain.day, addresses=addresses))
            self.observations += 1

    def observe_all(self, snapshots: Iterable[DailySnapshot]) -> None:
        """Ingest several days."""
        for snapshot in snapshots:
            self.observe(snapshot)

    # -- queries ------------------------------------------------------------

    def history(self, www: "DomainName | str") -> List[HistoryEntry]:
        """Every recorded change-point for a hostname, oldest first."""
        return list(self._history.get(str(DomainName(www)), []))

    def first_seen(self, www: "DomainName | str") -> Optional[HistoryEntry]:
        """The oldest observation, if any."""
        entries = self._history.get(str(DomainName(www)))
        return entries[0] if entries else None

    def candidate_origins(
        self,
        www: "DomainName | str",
        matcher: ProviderMatcher,
        before_day: Optional[int] = None,
    ) -> List[IPv4Address]:
        """Historical non-DPS addresses — the IP-history attack vector.

        ``before_day`` restricts to observations strictly before a day
        (e.g. before the site joined its current DPS).
        """
        seen: List[IPv4Address] = []
        for entry in self._history.get(str(DomainName(www)), []):
            if before_day is not None and entry.day >= before_day:
                continue
            for address in entry.addresses:
                if matcher.in_provider_ranges(address):
                    continue
                if address not in seen:
                    seen.append(address)
        return seen

    def __len__(self) -> int:
        """Hostnames with recorded history."""
        return len(self._history)
