"""Exposure-duration tracking (Fig. 9, §V-A-3).

Tracks which verified exposed origins appear in which weekly scans and
derives the paper's three headline quantities:

* the number of *newly* exposed origins each week;
* the origins exposed in **every** scan ("always exposed", lower-bounding
  their exposure at the full study length);
* the origins whose exposure both appeared and disappeared within the
  study window (admins rotated the origin, or the provider purged the
  record).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set

__all__ = ["ExposureTimeline", "ExposureSummary"]


@dataclass(frozen=True)
class ExposureSummary:
    """Fig. 9's aggregate numbers."""

    weeks: int
    total_distinct: int
    always_exposed: int
    bounded_exposures: int
    new_per_week: Dict[int, int]

    @property
    def average_new_per_week(self) -> float:
        """Mean newly-exposed count over weeks 2..N."""
        later_weeks = [count for week, count in self.new_per_week.items() if week > 0]
        if not later_weeks:
            return 0.0
        return sum(later_weeks) / len(later_weeks)


class ExposureTimeline:
    """Accumulates weekly verified-origin sets."""

    def __init__(self) -> None:
        self._weeks: List[Set[str]] = []

    def record_week(self, verified_websites: Iterable[str]) -> None:
        """Add one weekly scan's verified set."""
        self._weeks.append(set(verified_websites))

    def state_dict(self) -> List[List[str]]:
        """The weekly sets as sorted lists (JSON-compatible, byte-stable)."""
        return [sorted(week) for week in self._weeks]

    def restore_state(self, weeks: Sequence[Iterable[str]]) -> None:
        """Reinstate the timeline captured by :meth:`state_dict`."""
        self._weeks = [set(week) for week in weeks]

    @property
    def num_weeks(self) -> int:
        """Weeks recorded so far."""
        return len(self._weeks)

    def week(self, index: int) -> Set[str]:
        """The verified set of one week (0-based)."""
        return set(self._weeks[index])

    # ------------------------------------------------------------------

    def all_websites(self) -> Set[str]:
        """Every site verified at least once."""
        combined: Set[str] = set()
        for week in self._weeks:
            combined |= week
        return combined

    def always_exposed(self) -> Set[str]:
        """Sites verified in *every* week."""
        if not self._weeks:
            return set()
        intersection = set(self._weeks[0])
        for week in self._weeks[1:]:
            intersection &= week
        return intersection

    def newly_exposed(self) -> Dict[int, Set[str]]:
        """Week → sites first seen that week (week 0 = baseline)."""
        seen: Set[str] = set()
        new_by_week: Dict[int, Set[str]] = {}
        for index, week in enumerate(self._weeks):
            fresh = week - seen
            new_by_week[index] = fresh
            seen |= week
        return new_by_week

    def bounded_exposures(self) -> Set[str]:
        """Sites whose first and last sightings are both strictly inside
        the study (appearance *and* disappearance observed)."""
        if len(self._weeks) < 3:
            return set()
        bounded: Set[str] = set()
        for site in sorted(self.all_websites()):
            present = [i for i, week in enumerate(self._weeks) if site in week]
            first, last = present[0], present[-1]
            if first > 0 and last < len(self._weeks) - 1:
                bounded.add(site)
        return bounded

    def exposure_spans(self) -> Dict[str, int]:
        """Site → observed exposure span in weeks (last - first + 1),
        keyed in sorted-site order so exports are byte-stable."""
        spans: Dict[str, int] = {}
        for site in sorted(self.all_websites()):
            present = [i for i, week in enumerate(self._weeks) if site in week]
            spans[site] = present[-1] - present[0] + 1
        return spans

    def summary(self) -> ExposureSummary:
        """The Fig. 9 aggregate."""
        new_by_week = {week: len(sites) for week, sites in self.newly_exposed().items()}
        return ExposureSummary(
            weeks=len(self._weeks),
            total_distinct=len(self.all_websites()),
            always_exposed=len(self.always_exposed()),
            bounded_exposures=len(self.bounded_exposures()),
            new_per_week=new_by_week,
        )
