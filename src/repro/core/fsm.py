"""The DPS usage finite state machine (Fig. 4).

States are (status, provider-slot) pairs; transitions are labelled with
behaviour combinations.  The FSM serves two purposes:

* as executable documentation of Fig. 4;
* as a validator — every (previous, current) observation pair produced
  by the measurement pipeline must correspond to a legal transition, and
  the behaviours the detector emits for it must match the edge label.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import MeasurementError
from ..world.admin import BehaviorKind
from .status import DpsObservation, DpsStatus

__all__ = ["FsmState", "DpsUsageFsm"]


@dataclass(frozen=True)
class FsmState:
    """One FSM state: a status plus which provider slot holds the site.

    Provider identity is abstracted to slots ("P1", "P2") exactly as in
    Fig. 4 — what matters is *same provider or different*, not which.
    """

    status: str
    provider_slot: Optional[str]  # None for NONE-status states

    def __post_init__(self) -> None:
        if self.status == DpsStatus.NONE and self.provider_slot is not None:
            raise MeasurementError("NONE state cannot carry a provider")
        if self.status != DpsStatus.NONE and self.provider_slot is None:
            raise MeasurementError(f"{self.status} state needs a provider slot")


class DpsUsageFsm:
    """Fig. 4's machine: classify transitions and validate sequences."""

    @staticmethod
    def state_of(observation: DpsObservation, slot: str = "P1") -> FsmState:
        """Abstract an observation into an FSM state."""
        if observation.status == DpsStatus.NONE:
            return FsmState(DpsStatus.NONE, None)
        return FsmState(observation.status, slot)

    @staticmethod
    def classify(
        prev: DpsObservation, curr: DpsObservation
    ) -> Tuple[BehaviorKind, ...]:
        """The behaviour label of the edge from ``prev`` to ``curr``.

        Returns an empty tuple for the NULL self-loop.  Raises
        :class:`~repro.errors.MeasurementError` for an impossible pair
        (none exist in the 3-status model, but guard anyway).
        """
        p, c = prev.status, curr.status
        same_provider = prev.provider == curr.provider

        if p == c and same_provider:
            return ()
        if p == DpsStatus.NONE:
            if c == DpsStatus.ON:
                return (BehaviorKind.JOIN,)
            if c == DpsStatus.OFF:
                return (BehaviorKind.JOIN, BehaviorKind.PAUSE)
        if c == DpsStatus.NONE:
            return (BehaviorKind.LEAVE,)
        if same_provider:
            if p == DpsStatus.ON and c == DpsStatus.OFF:
                return (BehaviorKind.PAUSE,)
            if p == DpsStatus.OFF and c == DpsStatus.ON:
                return (BehaviorKind.RESUME,)
        else:
            if c == DpsStatus.ON:
                return (BehaviorKind.SWITCH,)
            return (BehaviorKind.SWITCH, BehaviorKind.PAUSE)
        raise MeasurementError(f"impossible transition {p}->{c}")

    @classmethod
    def validate_sequence(cls, observations: List[DpsObservation]) -> List[Tuple[BehaviorKind, ...]]:
        """Classify every consecutive pair of one site's observations.

        Raises on any pair the FSM cannot explain; returns the edge
        labels otherwise.
        """
        labels: List[Tuple[BehaviorKind, ...]] = []
        for prev, curr in zip(observations, observations[1:]):
            if prev.www != curr.www:
                raise MeasurementError(
                    f"sequence mixes sites: {prev.www} vs {curr.www}"
                )
            labels.append(cls.classify(prev, curr))
        return labels
