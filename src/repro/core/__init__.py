"""The paper's contribution: the measurement methodology and analyses.

Collectors, matchers, status/behaviour inference, the FSM, the hidden-
record filter pipeline, the residual-resolution scanners, the attacker
and countermeasures, and the six-week study orchestrator.
"""

from .attacker import (
    AttackOutcome,
    DdosSimulator,
    DiscoveryResult,
    ResidualResolutionAttacker,
)
from .behaviors import BehaviorDetector, MeasuredBehavior, MultiCdnFilter
from .collector import DailySnapshot, DnsRecordCollector, DomainSnapshot
from .countermeasures import (
    CountermeasureComparison,
    apply_provider_policy,
    leave_with_fake_a,
    silent_termination,
    switch_then_rotate,
    track_and_compare,
)
from .export import load_report_dict, report_to_dict, save_report
from .exposure import ExposureSummary, ExposureTimeline
from .fsm import DpsUsageFsm, FsmState
from .history import HistoryEntry, PassiveDnsDb
from .htmlverify import HtmlVerifier, VerificationOutcome
from .ip_change import IpChangeExperiment, IpChangeResult, IpUnchangedRow
from .longitudinal import AdoptionPoint, LongitudinalStudy, predicted_growth_factor
from .matching import ProviderMatcher
from .pause import PauseAnalyzer, PauseWindow, empirical_cdf
from .pipeline import FilterPipeline, HiddenRecord, PipelineReport, RetrievedRecord
from .purge_probe import PurgeProbe, PurgeTrial
from .report import (
    render_fig2_adoption,
    render_fig3_behaviors,
    render_fig5_pause_cdf,
    render_fig6_cloudflare,
    render_fig7_vantage,
    render_fig9_exposure,
    render_full_report,
    render_table5_ip_unchanged,
    render_table6_residual,
)
from .residual_scan import CloudflareScanner, IncapsulaScanner, NameserverHarvest
from .stats import (
    CalibrationCheck,
    count_zscore,
    ks_distance,
    poisson_interval,
    proportion_zscore,
    wilson_interval,
)
from .status import DpsObservation, DpsStatus, StatusDeterminer
from .study import SixWeekStudy, StudyConfig, StudyReport
from .vectors import (
    DEFAULT_SUBDOMAIN_WORDLIST,
    OriginExposureScanner,
    VectorFinding,
)

__all__ = [
    "AttackOutcome",
    "DdosSimulator",
    "DiscoveryResult",
    "ResidualResolutionAttacker",
    "BehaviorDetector",
    "MeasuredBehavior",
    "MultiCdnFilter",
    "DailySnapshot",
    "DnsRecordCollector",
    "DomainSnapshot",
    "CountermeasureComparison",
    "apply_provider_policy",
    "leave_with_fake_a",
    "silent_termination",
    "switch_then_rotate",
    "track_and_compare",
    "load_report_dict",
    "report_to_dict",
    "save_report",
    "ExposureSummary",
    "ExposureTimeline",
    "DpsUsageFsm",
    "FsmState",
    "HtmlVerifier",
    "VerificationOutcome",
    "IpChangeExperiment",
    "IpChangeResult",
    "IpUnchangedRow",
    "AdoptionPoint",
    "LongitudinalStudy",
    "predicted_growth_factor",
    "ProviderMatcher",
    "PauseAnalyzer",
    "PauseWindow",
    "empirical_cdf",
    "FilterPipeline",
    "HiddenRecord",
    "PipelineReport",
    "RetrievedRecord",
    "PurgeProbe",
    "PurgeTrial",
    "render_fig2_adoption",
    "render_fig3_behaviors",
    "render_fig5_pause_cdf",
    "render_fig6_cloudflare",
    "render_fig7_vantage",
    "render_fig9_exposure",
    "render_full_report",
    "render_table5_ip_unchanged",
    "render_table6_residual",
    "CloudflareScanner",
    "IncapsulaScanner",
    "NameserverHarvest",
    "CalibrationCheck",
    "count_zscore",
    "ks_distance",
    "poisson_interval",
    "proportion_zscore",
    "wilson_interval",
    "DpsObservation",
    "DpsStatus",
    "StatusDeterminer",
    "SixWeekStudy",
    "StudyConfig",
    "StudyReport",
    "HistoryEntry",
    "PassiveDnsDb",
    "DEFAULT_SUBDOMAIN_WORDLIST",
    "OriginExposureScanner",
    "VectorFinding",
]
