"""The hidden-record filter pipeline (Fig. 8, §V-A-2).

Records retrieved directly from a DPS provider's nameservers pass
through three filters:

1. **IP-matching filter** — drop answers inside the scanned provider's
   own ranges: those sites are under its protection right now, so there
   is no residual resolution to speak of.
2. **A-matching filter** — resolve each site normally and drop answers
   that are publicly visible anyway.  What survives is a *hidden
   record*: retrievable only from the DPS nameservers.
3. **HTML-verification filter** — a hidden record is exploitable only
   if its address still points at the live origin; verify by comparing
   the page served through the site's *current* public address with the
   page at the hidden address.

The same pipeline serves both the Cloudflare and Incapsula case studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..dns.name import DomainName
from ..dns.records import RecordType
from ..dns.resolver import RecursiveResolver
from ..net.ipaddr import IPv4Address, IPv4Prefix
from .htmlverify import HtmlVerifier

__all__ = ["RetrievedRecord", "HiddenRecord", "PipelineReport", "FilterPipeline"]


@dataclass(frozen=True, slots=True)
class RetrievedRecord:
    """One record pulled straight from a DPS provider's nameservers."""

    www: str
    provider: str
    addresses: tuple
    #: CNAME canonical name the record was retrieved through, if any
    #: (Incapsula-style scans).
    canonical: Optional[str] = None


@dataclass(frozen=True, slots=True)
class HiddenRecord:
    """A record visible only via the DPS nameservers, with its verdict."""

    www: str
    provider: str
    address: IPv4Address
    verified_origin: bool
    reason: str


@dataclass
class PipelineReport:
    """Counts at every pipeline stage, plus the surviving records."""

    provider: str
    week: int
    retrieved: int = 0
    dropped_ip_filter: int = 0
    dropped_a_filter: int = 0
    hidden: List[HiddenRecord] = field(default_factory=list)

    @property
    def hidden_count(self) -> int:
        """Hidden records found this run."""
        return len(self.hidden)

    @property
    def verified_count(self) -> int:
        """Hidden records confirmed to point at live origins."""
        return sum(1 for record in self.hidden if record.verified_origin)

    @property
    def verified_fraction(self) -> float:
        """Verified origins as a fraction of hidden records."""
        if not self.hidden:
            return 0.0
        return self.verified_count / len(self.hidden)

    def verified_websites(self) -> List[str]:
        """Hostnames with a verified exposed origin (Fig. 9 tracking)."""
        return sorted({r.www for r in self.hidden if r.verified_origin})

    def hidden_websites(self) -> List[str]:
        """Hostnames with at least one hidden record."""
        return sorted({r.www for r in self.hidden})


class FilterPipeline:
    """Runs the three Fig. 8 filters over retrieved records."""

    def __init__(
        self,
        provider_prefixes: Sequence["IPv4Prefix | str"],
        resolver: RecursiveResolver,
        verifier: HtmlVerifier,
    ) -> None:
        self._provider_prefixes = [IPv4Prefix(p) for p in provider_prefixes]
        self._resolver = resolver
        self._verifier = verifier

    def state_dict(self) -> Dict[str, object]:
        """Persistent mutable state — the pipeline's private resolver.

        The verifier is deliberately excluded: one
        :class:`~repro.core.htmlverify.HtmlVerifier` is shared across
        pipelines, so its state is captured once by the owner (the
        study runtime), not once per pipeline.
        """
        return {"resolver": self._resolver.state_dict()}

    def restore_state(self, state: Dict[str, object]) -> None:
        """Reinstate state captured by :meth:`state_dict`."""
        self._resolver.restore_state(state["resolver"])

    def run(
        self,
        records: Iterable[RetrievedRecord],
        provider: str,
        week: int,
    ) -> PipelineReport:
        """Filter one scan's worth of retrieved records.

        A record's addresses are deduplicated (order-preservingly)
        before any stage counts them, so a provider answering with a
        repeated address cannot inflate ``retrieved`` or emit duplicate
        :class:`HiddenRecord`\\ s for one (www, address) pair.  The
        A-matching stage resolves every surviving hostname in one
        :meth:`~repro.dns.resolver.RecursiveResolver.resolve_many` batch.
        """
        report = PipelineReport(provider=provider, week=week)
        self._resolver.purge_cache()

        # Stage 1 over every record, remembering the survivors so stage
        # 2 can resolve all hostnames that still matter as one batch.
        filtered: List[Tuple[RetrievedRecord, List[IPv4Address]]] = []
        need_normal: List[str] = []
        queued: Set[str] = set()
        for record in records:
            addresses = list(
                dict.fromkeys(IPv4Address(a) for a in record.addresses)
            )
            report.retrieved += len(addresses)
            survivors = self._ip_matching_filter(addresses)
            report.dropped_ip_filter += len(addresses) - len(survivors)
            if not survivors:
                continue
            filtered.append((record, survivors))
            if record.www not in queued:
                queued.add(record.www)
                need_normal.append(record.www)

        # Stage 2: one batched normal-resolution pass (first occurrence
        # order, so the query sequence matches the old lazy behaviour).
        normal_results = self._resolver.resolve_many(
            (DomainName(www), RecordType.A) for www in need_normal
        )
        normal_cache: Dict[str, tuple] = {
            www: tuple(result.addresses)
            for www, result in zip(need_normal, normal_results)
        }

        for record, survivors in filtered:
            normal = normal_cache[record.www]
            hidden_ips = [ip for ip in survivors if ip not in normal]
            report.dropped_a_filter += len(survivors) - len(hidden_ips)
            for address in hidden_ips:
                report.hidden.append(
                    self._verify(record.www, address, normal, provider)
                )
        return report

    # -- stage 1 -----------------------------------------------------------

    def _ip_matching_filter(self, addresses: Sequence) -> List[IPv4Address]:
        return [
            IPv4Address(a)
            for a in addresses
            if not any(IPv4Address(a) in p for p in self._provider_prefixes)
        ]

    # -- stage 3 -----------------------------------------------------------

    def _verify(
        self, www: str, address: IPv4Address, normal: tuple, provider: str
    ) -> HiddenRecord:
        if not normal:
            # The site no longer resolves publicly; nothing to compare
            # against — unverifiable (and the site is likely gone).
            return HiddenRecord(www, provider, address, False, "no-public-resolution")
        outcome = self._verifier.verify(www, normal[0], address)
        return HiddenRecord(www, provider, address, outcome.verified, outcome.reason)
