"""Residual-resolution policies — the paper's root cause, as code.

What should a DPS nameserver answer when queried for a customer that has
terminated service?  The paper identifies three possible configurations
(§VI-A/B):

* :class:`AnswerWithOrigin` — keep answering with the stored origin A
  record "for service continuity".  This is what Cloudflare and Incapsula
  do, and it *is* the residual-resolution vulnerability.
* :class:`RefuseAfterTermination` — drop the customer's records at
  termination and refuse queries.  Fully eliminates the vulnerability at
  the cost of breaking clients holding stale cached delegations.
* :class:`TrackAndCompare` — the paper's proposed middle ground: keep
  answering only while the customer's *public* resolution still matches
  the stored address; stop as soon as the customer has visibly moved
  (new origin or new DPS).  Preserves continuity without exposing
  protected origins.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..dns.name import DomainName
from ..net.ipaddr import IPv4Address

__all__ = [
    "ResidualPolicy",
    "AnswerWithOrigin",
    "RefuseAfterTermination",
    "TrackAndCompare",
]


class ResidualPolicy:
    """Decides what a provider serves for a *terminated* customer."""

    name = "abstract"

    def records_after_termination(
        self,
        hostname: DomainName,
        stored_origin: IPv4Address,
        public_lookup: Callable[[DomainName], List[IPv4Address]],
    ) -> Optional[IPv4Address]:
        """Address to answer with, or None to refuse.

        ``public_lookup`` performs a normal recursive resolution of the
        hostname, used by the track-and-compare policy.
        """
        raise NotImplementedError


class AnswerWithOrigin(ResidualPolicy):
    """Cloudflare/Incapsula behaviour: expose the stored origin."""

    name = "answer-with-origin"

    def records_after_termination(
        self,
        hostname: DomainName,
        stored_origin: IPv4Address,
        public_lookup: Callable[[DomainName], List[IPv4Address]],
    ) -> Optional[IPv4Address]:
        return stored_origin


class RefuseAfterTermination(ResidualPolicy):
    """Well-behaved providers: no answer for ex-customers."""

    name = "refuse"

    def records_after_termination(
        self,
        hostname: DomainName,
        stored_origin: IPv4Address,
        public_lookup: Callable[[DomainName], List[IPv4Address]],
    ) -> Optional[IPv4Address]:
        return None


class TrackAndCompare(ResidualPolicy):
    """The paper's countermeasure (§VI-B-1).

    Answer with the stored origin only while a normal public resolution
    of the hostname still returns that same address.  Once the customer
    demonstrably moved — a different address, or no answer at all — stop
    responding, because continuing would expose an origin that is now
    supposed to be hidden.
    """

    name = "track-and-compare"

    def records_after_termination(
        self,
        hostname: DomainName,
        stored_origin: IPv4Address,
        public_lookup: Callable[[DomainName], List[IPv4Address]],
    ) -> Optional[IPv4Address]:
        current = public_lookup(hostname)
        if stored_origin in current:
            return stored_origin
        return None
