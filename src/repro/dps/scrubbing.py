"""Scrubbing centres.

Each PoP of a DPS provider deploys a scrubbing centre — a cleansing
station that examines rerouted traffic and blocks the malicious portion
on its way to the origin (§II-A-1).  Aggregate network capacity of
several Tbps is what lets a DPS absorb even record-setting attacks.

:class:`ScrubbingCenter` scrubs a flow: attack traffic is dropped,
legitimate traffic passes — *unless* the offered volume exceeds the
centre's ingest capacity, in which case everything suffers proportional
loss (the attack wins locally).  :class:`ScrubbingNetwork` spreads an
anycast-diffused attack across every centre.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from ..errors import ConfigurationError
from ..net.traffic import TrafficFlow

__all__ = ["ScrubbingCenter", "ScrubbingNetwork", "ScrubReport"]


@dataclass(frozen=True)
class ScrubReport:
    """Outcome of scrubbing one flow."""

    offered: TrafficFlow
    forwarded: TrafficFlow
    dropped_attack_gbps: float
    saturated: bool

    @property
    def origin_bound_gbps(self) -> float:
        """Traffic volume forwarded towards the origin after scrubbing."""
        return self.forwarded.total_gbps

    @property
    def legitimate_survival(self) -> float:
        """Fraction of legitimate traffic that survived scrubbing."""
        if self.offered.legitimate_gbps == 0:
            return 1.0
        return self.forwarded.legitimate_gbps / self.offered.legitimate_gbps


class ScrubbingCenter:
    """One PoP-resident cleansing station."""

    def __init__(self, pop_id: str, capacity_gbps: float) -> None:
        if capacity_gbps <= 0:
            raise ConfigurationError(f"scrubbing capacity must be positive: {capacity_gbps}")
        self.pop_id = pop_id
        self.capacity_gbps = capacity_gbps

    def scrub(self, flow: TrafficFlow) -> ScrubReport:
        """Clean one flow.

        Within capacity, all attack traffic is identified and dropped and
        all legitimate traffic is forwarded.  Beyond capacity the centre
        is overwhelmed: it degrades to proportional forwarding of both
        classes (it can no longer inspect everything), then drops the
        excess.
        """
        if flow.total_gbps <= self.capacity_gbps:
            return ScrubReport(
                offered=flow,
                forwarded=TrafficFlow(flow.legitimate_gbps, 0.0),
                dropped_attack_gbps=flow.attack_gbps,
                saturated=False,
            )
        keep = self.capacity_gbps / flow.total_gbps
        return ScrubReport(
            offered=flow,
            forwarded=TrafficFlow(
                flow.legitimate_gbps * keep, flow.attack_gbps * keep
            ),
            dropped_attack_gbps=flow.attack_gbps * (1 - keep),
            saturated=True,
        )


class ScrubbingNetwork:
    """All scrubbing centres of one provider, fed by anycast diffusion.

    Anycast spreads a globally distributed attack across PoPs roughly
    evenly (each botnet member is routed to its nearest PoP), so the
    network's effective capacity is the sum of its centres' capacities —
    **unless** the attacker concentrates bots in one region, in which
    case a single catchment PoP eats most of the flood and saturates
    locally (the Crossfire-style concentration of §VII's related work).
    """

    def __init__(self, centers: Iterable[ScrubbingCenter]) -> None:
        self.centers: List[ScrubbingCenter] = list(centers)
        if not self.centers:
            raise ConfigurationError("a scrubbing network needs at least one centre")
        self._by_pop = {center.pop_id: center for center in self.centers}

    @property
    def total_capacity_gbps(self) -> float:
        """Aggregate ingest capacity across all PoPs."""
        return sum(center.capacity_gbps for center in self.centers)

    def center_for(self, pop_id: str) -> ScrubbingCenter:
        """The centre at one PoP."""
        try:
            return self._by_pop[pop_id]
        except KeyError:
            raise ConfigurationError(f"no scrubbing centre at PoP {pop_id!r}") from None

    def scrub_distributed(self, flow: TrafficFlow) -> ScrubReport:
        """Scrub an attack diffused evenly across every PoP."""
        share = 1.0 / len(self.centers)
        return self.scrub_weighted({c.pop_id: share for c in self.centers}, flow)

    def scrub_weighted(
        self, pop_shares: "dict[str, float]", flow: TrafficFlow
    ) -> ScrubReport:
        """Scrub an attack whose traffic lands unevenly across PoPs.

        ``pop_shares`` maps PoP ids to the fraction of the flow each
        captures (anycast catchment shares of the botnet's locations);
        fractions must sum to ~1.
        """
        total_share = sum(pop_shares.values())
        if not 0.999 <= total_share <= 1.001:
            raise ConfigurationError(
                f"PoP shares must sum to 1, got {total_share:.3f}"
            )
        forwarded_legit = forwarded_attack = dropped = 0.0
        saturated = False
        for pop_id, share in pop_shares.items():
            report = self.center_for(pop_id).scrub(flow.scaled(share))
            forwarded_legit += report.forwarded.legitimate_gbps
            forwarded_attack += report.forwarded.attack_gbps
            dropped += report.dropped_attack_gbps
            saturated = saturated or report.saturated
        return ScrubReport(
            offered=flow,
            forwarded=TrafficFlow(forwarded_legit, forwarded_attack),
            dropped_attack_gbps=dropped,
            saturated=saturated,
        )
