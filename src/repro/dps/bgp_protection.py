"""BGP-based rerouting — the paper's *other* protection mechanism.

§II-A-1 names two rerouting families: the DNS-based mechanisms the paper
studies, and BGP-based rerouting ("Infrastructure DDoS Protection",
[16]), where the customer brings a whole address block and the provider
*announces it from its own AS*.  All traffic to the block — whatever
address an attacker holds — lands in the scrubbing network first and is
tunnelled to the customer.

This changes the threat picture completely, and modelling it makes the
contrast testable:

* residual resolution (and every Table I vector) becomes harmless: an
  exposed origin address still routes through the scrubbers;
* DNS needs no delegation, so there is nothing for a previous provider
  to keep answering;
* the measurement side-effect: A-matching now classifies the customer's
  *own* addresses as provider space, because the RouteViews view shows
  the provider's AS originating them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import PortalError
from ..net.ipaddr import IPv4Prefix
from ..net.routeviews import RouteViewsDb
from .provider import DpsProvider

__all__ = ["BgpProtectionService", "BgpCustomer"]


@dataclass
class BgpCustomer:
    """One protected block and how to undo its announcement."""

    prefix: IPv4Prefix
    #: The (prefix, ASN) announcement that covered the block before
    #: protection, if any — restored on withdrawal.
    previous_announcement: Optional[Tuple[IPv4Prefix, int]]


class BgpProtectionService:
    """A provider's BGP-rerouting product.

    Operates on the global routing view: ``protect`` announces the
    customer block from the provider's AS (a more-specific or equal
    announcement wins longest-prefix matching), ``withdraw`` removes it.
    """

    def __init__(self, provider: DpsProvider, routeviews: RouteViewsDb) -> None:
        self.provider = provider
        self._routeviews = routeviews
        self._customers: Dict[IPv4Prefix, BgpCustomer] = {}

    @property
    def announcing_asn(self) -> int:
        """The AS number the provider announces protected blocks from."""
        return self.provider.build.as_numbers[0]

    # ------------------------------------------------------------------

    def protect(self, prefix: "IPv4Prefix | str") -> BgpCustomer:
        """Start announcing a customer block through the platform."""
        block = IPv4Prefix(prefix)
        if block in self._customers:
            raise PortalError(f"{block} is already BGP-protected")
        previous = self._routeviews.lookup_prefix(block.network)
        if previous is not None and previous[0] == block:
            # Exact announcement exists: remember it so withdrawal can
            # restore the original origination.
            remembered = previous
        else:
            remembered = None
        self._routeviews.announce(block, self.announcing_asn)
        customer = BgpCustomer(prefix=block, previous_announcement=remembered)
        self._customers[block] = customer
        return customer

    def withdraw(self, prefix: "IPv4Prefix | str") -> None:
        """Stop announcing a block; routing reverts to the covering
        (or restored) announcement."""
        block = IPv4Prefix(prefix)
        customer = self._customers.pop(block, None)
        if customer is None:
            raise PortalError(f"{block} is not BGP-protected by {self.provider.name}")
        self._routeviews.withdraw(block)
        if customer.previous_announcement is not None:
            original_prefix, original_asn = customer.previous_announcement
            self._routeviews.announce(original_prefix, original_asn)

    def is_protected(self, address) -> bool:
        """True when an address currently routes through the platform."""
        return any(address in block for block in self._customers)

    @property
    def protected_blocks(self) -> Tuple[IPv4Prefix, ...]:
        """Every block currently announced."""
        return tuple(self._customers)
