"""Provider nameserver fleets.

A DPS provider's DNS is a single logical database served from many
nameserver identities announced over anycast (§V-A-1): every nameserver
can answer for every customer, and a query to one anycast address lands
on the PoP closest to the client.

:class:`NameserverFleet` models this: one backend
:class:`~repro.dns.authoritative.AuthoritativeServer` (the central
database), many nameserver hostnames each with an anycast address, and a
per-PoP :class:`PopMirror` wrapper that counts queries so experiments can
observe catchment behaviour (Fig. 7).

Cloudflare-style ``[person name].ns.<provider domain>`` naming is
provided for the NS-rerouting fleet — the study extracted 391 such
nameservers (§V-A-1, footnote 12).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..dns.authoritative import AnswerPolicy, AuthoritativeServer
from ..dns.name import DomainName
from ..net.anycast import AnycastNetwork
from ..net.fabric import NetworkFabric
from ..net.ipaddr import AddressAllocator, IPv4Address

__all__ = ["PopMirror", "NameserverFleet", "generate_person_names"]

#: Seed lists for Cloudflare-style nameserver naming.
_GIRL_NAMES = [
    "ada", "amy", "anna", "beth", "cara", "dana", "demi", "elle", "emma",
    "eva", "faye", "gina", "iris", "jane", "june", "kate", "kim", "lara",
    "lily", "lola", "lucy", "mary", "maya", "mia", "nina", "nora", "olga",
    "pam", "rita", "rosa", "ruth", "sara", "tess", "uma", "vera", "zoe",
]
_BOY_NAMES = [
    "abe", "alan", "ben", "carl", "dan", "drew", "earl", "eric", "finn",
    "fred", "gary", "glen", "hank", "hugo", "ian", "jack", "jake", "karl",
    "kurt", "leo", "liam", "luke", "marc", "max", "neil", "nick", "noah",
    "otto", "paul", "pete", "ray", "rob", "sam", "seth", "todd", "walt",
]


def generate_person_names(count: int) -> List[str]:
    """Generate ``count`` distinct person-style labels, deterministically.

    Cycles through the girl/boy name lists, appending a numeric suffix on
    later rounds (``kate``, ``kate2``, ``kate3`` …) the way providers
    extend a finite name pool.
    """
    base = []
    for girl, boy in zip(_GIRL_NAMES, _BOY_NAMES):
        base.extend((girl, boy))
    names: List[str] = []
    round_no = 0
    while len(names) < count:
        suffix = "" if round_no == 0 else str(round_no + 1)
        for name in base:
            names.append(name + suffix)
            if len(names) == count:
                break
        round_no += 1
    return names


class PopMirror:
    """One PoP's face of a shared nameserver backend.

    Forwards queries to the backend and counts them, so experiments can
    verify which PoPs absorbed a scanner's load.
    """

    def __init__(self, backend: AuthoritativeServer, pop_id: str) -> None:
        self.backend = backend
        self.pop_id = pop_id
        self.queries_served = 0

    def handle_query(self, query, client_region=None):
        """Count and delegate to the shared backend."""
        self.queries_served += 1
        return self.backend.handle_query(query, client_region)


class NameserverFleet:
    """A set of anycast nameserver identities over one shared backend."""

    def __init__(
        self,
        provider_name: str,
        hostnames: List["DomainName | str"],
        fabric: NetworkFabric,
        allocator: AddressAllocator,
        anycast: Optional[AnycastNetwork] = None,
        policy: Optional[AnswerPolicy] = None,
    ) -> None:
        if not hostnames:
            raise ValueError("a fleet needs at least one nameserver hostname")
        self.provider_name = provider_name
        self.hostnames: List[DomainName] = [DomainName(h) for h in hostnames]
        self.anycast = anycast
        self.backend = AuthoritativeServer(self.hostnames[0], policy=policy)
        self._fabric = fabric
        self._mirrors: Dict[IPv4Address, Dict[str, PopMirror]] = {}
        self.addresses: Dict[DomainName, IPv4Address] = {}
        for hostname in self.hostnames:
            ip = allocator.allocate_address()
            self.addresses[hostname] = ip
            if anycast is None:
                fabric.register_dns(ip, self.backend)
            else:
                mirrors = {
                    pop.pop_id: PopMirror(self.backend, pop.pop_id)
                    for pop in anycast.pops
                }
                self._mirrors[ip] = mirrors
                fabric.register_dns_anycast(ip, anycast, mirrors)

    # -- lookups ---------------------------------------------------------

    def address_of(self, hostname: "DomainName | str") -> IPv4Address:
        """Anycast address of one nameserver identity."""
        return self.addresses[DomainName(hostname)]

    def all_addresses(self) -> List[IPv4Address]:
        """Every nameserver address in the fleet."""
        return [self.addresses[h] for h in self.hostnames]

    def pop_query_counts(self) -> Dict[str, int]:
        """Queries served per PoP, aggregated over the whole fleet."""
        counts: Dict[str, int] = {}
        for mirrors in self._mirrors.values():
            for pop_id, mirror in mirrors.items():
                counts[pop_id] = counts.get(pop_id, 0) + mirror.queries_served
        return counts

    def __len__(self) -> int:
        return len(self.hostnames)
