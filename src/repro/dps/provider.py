"""DPS/CDN providers.

:class:`DpsProvider` composes everything a provider operates: announced
address space, an anycast PoP network with scrubbing centres, an edge
fleet of reverse proxies, nameserver fleets (an infra fleet for the
provider's own zone; for NS-rerouting providers, a large customer-zone
fleet with person-style names), and the customer database behind the
configuration portal.

The behaviours the paper measures all live here:

* **pause** rewrites the customer's records to the origin address —
  the temporary-exposure window of Fig. 5 (only providers that support
  pause-to-origin, i.e. Cloudflare and Incapsula, do this);
* **terminate** consults the provider's
  :class:`~repro.dps.residual_policy.ResidualPolicy`: answer-with-origin
  is the residual-resolution vulnerability (§III/§V), refuse is the
  clean behaviour, track-and-compare the proposed countermeasure;
* **uninformed departure** (footnote 9) leaves the configuration — and
  hence the *edge* answer — in place, which is why those cases do not
  leak origins;
* **purge** removes stale records after a plan-dependent horizon
  (the paper's own-site probe saw 4 weeks on the free plan, §V-A-3).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..clock import SECONDS_PER_DAY, SimulationClock
from ..dns.authoritative import AnswerPolicy, AuthoritativeServer
from ..dns.message import DnsQuery, DnsResponse, Rcode
from ..dns.name import DomainName
from ..dns.records import RecordType, a_record, ns_record
from ..dns.resolver import RecursiveResolver
from ..dns.root import DnsHierarchy
from ..dns.zone import Zone
from ..errors import PlanError, PortalError
from ..net.anycast import AnycastNetwork
from ..net.asn import AsRegistry
from ..net.fabric import NetworkFabric
from ..net.geo import PointOfPresence, Region, WELL_KNOWN_REGIONS  # noqa: F401 (Region used in signatures)
from ..net.ipaddr import AddressAllocator, IPv4Address, IPv4Prefix
from ..net.traffic import TrafficFlow
from ..rng import stable_hash
from ..web.edge import EdgeServer
from .nameservers import NameserverFleet, generate_person_names
from .plans import DEFAULT_PLAN_POLICIES, PlanPolicy, PlanTier
from .portal import (
    CustomerRecord,
    CustomerStatus,
    OnboardingInstructions,
    ReroutingMethod,
)
from .residual_policy import AnswerWithOrigin, ResidualPolicy
from .scrubbing import ScrubReport, ScrubbingCenter, ScrubbingNetwork

__all__ = ["DpsProvider", "ProviderBuild"]

#: TTL of A records synthesized for terminated customers.  Short, like
#: the A records DPS providers serve generally (§VI-A footnote 13).
_RESIDUAL_A_TTL = 300


class _ProviderAnswerPolicy(AnswerPolicy):
    """Nameserver hook implementing per-customer answer behaviour.

    Active and paused customers are answered from zone data (the portal
    rewrites zones on state changes); *terminated, informed* customers
    are intercepted here and answered according to the provider's
    residual policy.
    """

    def __init__(self, provider: "DpsProvider") -> None:
        self._provider = provider
        self._resolving_publicly = False

    def intercept(self, server: AuthoritativeServer, query: DnsQuery) -> Optional[DnsResponse]:
        customer = self._provider._terminated_customer_for(query.qname)
        if customer is None or not customer.informed_departure:
            return None
        if self._resolving_publicly:
            # A track-and-compare public lookup looped back to us; the
            # provider's own stale answer must not count as evidence the
            # customer is still present.
            return DnsResponse.refused(query)
        if query.qtype is not RecordType.A:
            return DnsResponse.refused(query)
        address = self._provider.residual_policy.records_after_termination(
            query.qname, customer.origin_ip, self._public_lookup
        )
        if address is None:
            return DnsResponse.refused(query)
        return DnsResponse(
            query=query,
            authoritative=True,
            answers=[a_record(query.qname, address, _RESIDUAL_A_TTL)],
        )

    def _public_lookup(self, hostname: DomainName) -> List[IPv4Address]:
        resolver = self._provider._public_resolver
        if resolver is None:
            return []
        self._resolving_publicly = True
        try:
            resolver.purge_cache()
            return resolver.resolve(hostname, RecordType.A).addresses
        finally:
            self._resolving_publicly = False


class ProviderBuild:
    """Construction parameters for a :class:`DpsProvider`.

    Kept separate from the Table II catalog entry so tests can build
    small bespoke providers without touching catalog data.
    """

    def __init__(
        self,
        name: str,
        infra_domain: str,
        as_numbers: List[int],
        rerouting_methods: List[ReroutingMethod],
        cname_label_domain: Optional[str] = None,
        ns_host_suffix: Optional[str] = None,
        supports_pause: bool = False,
        num_pops: int = 8,
        num_edges: int = 8,
        num_customer_nameservers: int = 0,
        scrub_capacity_per_pop_gbps: float = 100.0,
        prefix_length: int = 20,
        shared_ip_fraction: float = 0.0,
    ) -> None:
        self.name = name
        self.infra_domain = infra_domain
        self.as_numbers = list(as_numbers)
        self.rerouting_methods = list(rerouting_methods)
        self.cname_label_domain = cname_label_domain or infra_domain
        self.ns_host_suffix = ns_host_suffix
        self.supports_pause = supports_pause
        self.num_pops = num_pops
        self.num_edges = num_edges
        self.num_customer_nameservers = num_customer_nameservers
        self.scrub_capacity_per_pop_gbps = scrub_capacity_per_pop_gbps
        self.prefix_length = prefix_length
        self.shared_ip_fraction = shared_ip_fraction


class DpsProvider:
    """One DDoS-protection-service provider platform."""

    def __init__(
        self,
        build: ProviderBuild,
        fabric: NetworkFabric,
        clock: SimulationClock,
        hierarchy: DnsHierarchy,
        as_registry: AsRegistry,
        allocator: AddressAllocator,
        residual_policy: Optional[ResidualPolicy] = None,
        plan_policies: Optional[Dict[PlanTier, PlanPolicy]] = None,
        offnet_allocator: Optional[AddressAllocator] = None,
    ) -> None:
        self.build = build
        self.name = build.name
        self.infra_domain = DomainName(build.infra_domain)
        self.clock = clock
        self.residual_policy = residual_policy or AnswerWithOrigin()
        self.plan_policies = dict(plan_policies or DEFAULT_PLAN_POLICIES)
        self._fabric = fabric
        self._hierarchy = hierarchy
        self._customers: Dict[DomainName, CustomerRecord] = {}
        self._by_cname: Dict[DomainName, CustomerRecord] = {}
        self._public_resolver: Optional[RecursiveResolver] = hierarchy.make_resolver()

        # --- address space ------------------------------------------------
        self.prefixes: List[IPv4Prefix] = []
        for asn in build.as_numbers:
            prefix = allocator.allocate_prefix(build.prefix_length)
            as_registry.register(asn, self.name, [prefix])
            self.prefixes.append(prefix)
        self._edge_allocator = AddressAllocator(self.prefixes[0])
        self._ns_allocator = AddressAllocator(
            self.prefixes[-1] if len(self.prefixes) > 1 else self.prefixes[0]
        )
        if len(self.prefixes) == 1:
            # Carve edges and nameservers from disjoint halves.
            halves = list(self.prefixes[0].subnets(build.prefix_length + 1))
            self._edge_allocator = AddressAllocator(halves[0])
            self._ns_allocator = AddressAllocator(halves[1])
        self._offnet_allocator = offnet_allocator
        self.offnet_edge_ips: List[IPv4Address] = []

        # --- PoPs, anycast, scrubbing ----------------------------------------
        region_names = sorted(WELL_KNOWN_REGIONS)
        pick = stable_hash(self.name) % len(region_names)
        chosen = [
            WELL_KNOWN_REGIONS[region_names[(pick + i) % len(region_names)]]
            for i in range(min(build.num_pops, len(region_names)))
        ]
        self.pops = [
            PointOfPresence(f"{self.name}-pop-{r.name}", r) for r in chosen
        ]
        self.anycast = AnycastNetwork(f"{self.name}-anycast", self.pops)
        self.scrubbing = ScrubbingNetwork(
            [ScrubbingCenter(p.pop_id, build.scrub_capacity_per_pop_gbps) for p in self.pops]
        )

        # --- edge fleet --------------------------------------------------------
        self.edges: List[EdgeServer] = []
        for i in range(build.num_edges):
            ip = self._edge_allocator.allocate_address()
            edge = EdgeServer(self.name, ip, fabric)
            fabric.register_http(ip, edge)
            self.edges.append(edge)
        # Off-net edges (Akamai/CDNetworks quirk, footnote 6): edge IPs
        # held in other organisations' ranges.
        if build.shared_ip_fraction > 0 and offnet_allocator is not None:
            num_offnet = max(1, int(build.num_edges * build.shared_ip_fraction * 4))
            for _ in range(num_offnet):
                ip = offnet_allocator.allocate_address()
                edge = EdgeServer(self.name, ip, fabric)
                fabric.register_http(ip, edge)
                self.edges.append(edge)
                self.offnet_edge_ips.append(ip)

        # --- nameserver fleets -----------------------------------------------------
        policy = _ProviderAnswerPolicy(self)
        infra_ns_hosts = [
            self.infra_domain.child("nic").child(f"ns{i + 1}") for i in range(2)
        ]
        self.infra_fleet = NameserverFleet(
            self.name, infra_ns_hosts, fabric, self._ns_allocator,
            anycast=self.anycast, policy=policy,
        )
        self.infra_zone = Zone(self.infra_domain, primary_ns=infra_ns_hosts[0])
        for host in infra_ns_hosts:
            self.infra_zone.set_a(host, self.infra_fleet.address_of(host), ttl=SECONDS_PER_DAY)
        self.infra_fleet.backend.host_zone(self.infra_zone)

        self.customer_fleet: Optional[NameserverFleet] = None
        if build.num_customer_nameservers > 0:
            suffix = DomainName(build.ns_host_suffix or f"ns.{self.infra_domain}")
            labels = generate_person_names(build.num_customer_nameservers)
            hostnames = [suffix.child(label) for label in labels]
            self.customer_fleet = NameserverFleet(
                self.name, hostnames, fabric, self._ns_allocator,
                anycast=self.anycast, policy=policy,
            )
            # Customer-fleet hostnames resolve via the infra zone.
            for hostname in hostnames:
                self.infra_zone.set_a(
                    hostname, self.customer_fleet.address_of(hostname), ttl=SECONDS_PER_DAY
                )

        # Delegate the infra domain from its TLD so the world can find us.
        hierarchy.delegate_apex(
            self.infra_domain,
            infra_ns_hosts,
            glue={
                str(host): self.infra_fleet.address_of(host) for host in infra_ns_hosts
            },
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def customers(self) -> List[CustomerRecord]:
        """All customer records, including terminated-but-unpurged ones."""
        return list(self._customers.values())

    def customer_for(self, hostname: "DomainName | str") -> Optional[CustomerRecord]:
        """The customer record covering a hostname, if any."""
        name = DomainName(hostname)
        record = self._customers.get(name)
        if record is None and not name.is_apex:
            record = self._customers.get(name.apex.child("www"))
            if record is not None and record.hostname != name:
                record = None
        if record is None and name.is_apex:
            record = self._customers.get(name.child("www"))
        return record

    def _terminated_customer_for(self, qname: DomainName) -> Optional[CustomerRecord]:
        # Direct hostname, apex of an NS customer, or a CNAME canonical name.
        record = self._by_cname.get(qname)
        if record is None:
            record = self._customers.get(qname)
        if record is None and len(qname) >= 2:
            record = self._customers.get(qname.apex.child("www"))
        if record is not None and record.is_terminated:
            return record
        return None

    def plan_policy(self, plan: PlanTier) -> PlanPolicy:
        """The policy for a plan tier."""
        return self.plan_policies[plan]

    def nameserver_hostnames(self) -> List[DomainName]:
        """Every customer-facing nameserver hostname (scan harvest target)."""
        if self.customer_fleet is not None:
            return list(self.customer_fleet.hostnames)
        return list(self.infra_fleet.hostnames)

    def edge_for(
        self, hostname: "DomainName | str", onnet_only: bool = False
    ) -> EdgeServer:
        """Deterministic edge assignment for a customer hostname.

        A-based rerouting publishes the bare edge address in the
        customer's own zone with no CNAME trail, so an off-net
        (footnote-6) edge there is unattributable to the provider —
        neither the RouteViews origin match nor the CNAME correction
        can classify the site.  Providers put A-record customers on
        on-net edges (``onnet_only=True``); shared off-net addresses
        are reached through CNAME/NS rerouting, which keeps the
        provider-owned name in the resolution chain.
        """
        pool = self.edges
        if onnet_only:
            offnet = set(self.offnet_edge_ips)
            pool = [edge for edge in self.edges if edge.ip not in offnet]
        index = stable_hash(self.name, str(DomainName(hostname))) % len(pool)
        return pool[index]

    # ------------------------------------------------------------------
    # Portal operations
    # ------------------------------------------------------------------

    def onboard(
        self,
        hostname: "DomainName | str",
        origin_ip: "IPv4Address | str",
        rerouting: ReroutingMethod,
        plan: PlanTier = PlanTier.FREE,
        imported_records: Optional[List] = None,
    ) -> OnboardingInstructions:
        """Sign a customer up; returns the DNS changes they must make.

        With NS-based rerouting the provider imports the customer's
        existing zone records (``imported_records``) so auxiliary names
        — unprotected subdomains, MX records — keep resolving.  Only the
        proxied names point at edges; the imported ones keep whatever
        addresses they had, which is exactly the "Subdomains" and "DNS
        Records" origin-exposure vectors of Table I.
        """
        name = DomainName(hostname)
        origin = IPv4Address(origin_ip)
        if rerouting not in self.build.rerouting_methods:
            raise PortalError(
                f"{self.name} does not offer {rerouting}-based rerouting"
            )
        if rerouting is ReroutingMethod.CNAME_BASED and self.name == "cloudflare":
            if not self.plan_policy(plan).cname_setup_allowed:
                raise PlanError(
                    f"CNAME setup requires a business/enterprise plan, not {plan}"
                )
        existing = self._customers.get(name)
        if existing is not None:
            if not existing.is_terminated:
                raise PortalError(f"{name} is already a customer of {self.name}")
            # Re-joining: the stale record is superseded, not left behind.
            self._forget(existing)

        edge = self.edge_for(
            name, onnet_only=rerouting is ReroutingMethod.A_BASED
        )
        record = CustomerRecord(
            hostname=name,
            origin_ip=origin,
            rerouting=rerouting,
            plan=plan,
            edge_ip=edge.ip,
        )
        self._customers[name] = record
        for e in self.edges:
            e.configure_origin(name, origin)
            e.configure_origin(name.apex, origin)

        if rerouting is ReroutingMethod.NS_BASED:
            return self._onboard_ns(record, imported_records or [])
        if rerouting is ReroutingMethod.CNAME_BASED:
            return self._onboard_cname(record)
        return OnboardingInstructions(rerouting=rerouting, edge_ip=edge.ip)

    def _onboard_ns(
        self, record: CustomerRecord, imported_records: List
    ) -> OnboardingInstructions:
        if self.customer_fleet is None:
            raise PortalError(f"{self.name} has no NS-hosting fleet")
        hostnames = self.customer_fleet.hostnames
        first = stable_hash("ns-assign", self.name, str(record.hostname)) % len(hostnames)
        if len(hostnames) == 1:
            assigned = [hostnames[0]]
        else:
            second = (
                first + 1 + stable_hash("ns2", str(record.hostname)) % (len(hostnames) - 1)
            ) % len(hostnames)
            assigned = [hostnames[first], hostnames[second]]
        record.assigned_nameservers = assigned
        apex = record.hostname.apex
        zone = Zone(apex, primary_ns=assigned[0])
        for ns_host in assigned:
            zone.add(ns_record(apex, ns_host))
        zone.set_a(apex, record.edge_ip, ttl=300)
        zone.set_a(record.hostname, record.edge_ip, ttl=300)
        for imported in imported_records:
            if imported.name in (apex, record.hostname) and imported.rtype in (
                RecordType.A,
                RecordType.CNAME,
            ):
                continue  # proxied names get edge addresses, not imports
            zone.add(imported)
        self.customer_fleet.backend.host_zone(zone)
        return OnboardingInstructions(
            rerouting=ReroutingMethod.NS_BASED, nameservers=assigned
        )

    def _onboard_cname(self, record: CustomerRecord) -> OnboardingInstructions:
        label = format(stable_hash("cname", self.name, str(record.hostname)) % 16 ** 10, "010x")
        canonical = DomainName(self.build.cname_label_domain).child(label)
        record.cname = canonical
        self._by_cname[canonical] = record
        self.infra_zone.set_a(canonical, record.edge_ip, ttl=300)
        return OnboardingInstructions(
            rerouting=ReroutingMethod.CNAME_BASED, cname=canonical
        )

    def pause(self, hostname: "DomainName | str") -> None:
        """Disable protection without leaving the platform.

        The customer's records are rewritten to the *origin* address —
        the behaviour the paper observed at Cloudflare and Incapsula
        (§IV-C-1) that opens the temporary-exposure window.
        """
        record = self._require_customer(hostname, CustomerStatus.ACTIVE)
        if not self.build.supports_pause:
            raise PortalError(f"{self.name} does not support pausing protection")
        record.status = CustomerStatus.PAUSED
        self._point_records_at(record, record.origin_ip)

    def resume(self, hostname: "DomainName | str") -> None:
        """Re-enable protection after a pause."""
        record = self._require_customer(hostname, CustomerStatus.PAUSED)
        record.status = CustomerStatus.ACTIVE
        assert record.edge_ip is not None
        self._point_records_at(record, record.edge_ip)

    def update_origin(self, hostname: "DomainName | str", new_origin: "IPv4Address | str") -> None:
        """The admin changed the origin address in the portal."""
        record = self._require_customer(hostname, None)
        if record.is_terminated:
            raise PortalError(f"{hostname} has terminated service with {self.name}")
        record.origin_ip = IPv4Address(new_origin)
        for e in self.edges:
            e.configure_origin(record.hostname, record.origin_ip)
            e.configure_origin(record.hostname.apex, record.origin_ip)
        if record.status is CustomerStatus.PAUSED:
            self._point_records_at(record, record.origin_ip)

    def terminate(self, hostname: "DomainName | str", informed: bool = True) -> None:
        """The customer leaves the platform.

        ``informed=False`` models the customer who never tells the
        provider (footnote 9): the configuration — including the edge
        answer — stays in place, so no origin leaks.
        """
        record = self._require_customer(hostname, None)
        if record.is_terminated:
            raise PortalError(f"{hostname} already terminated at {self.name}")
        record.status = CustomerStatus.TERMINATED
        record.terminated_at = self.clock.now
        record.informed_departure = informed
        if not informed:
            return
        # Stop proxying; what DNS answers remains is up to the residual
        # policy, enforced at query time by the answer policy hook.
        for e in self.edges:
            e.remove_origin(record.hostname)
            e.remove_origin(record.hostname.apex)
        if record.rerouting is ReroutingMethod.NS_BASED and self.customer_fleet is not None:
            self.customer_fleet.backend.drop_zone(record.hostname.apex)
        elif record.rerouting is ReroutingMethod.CNAME_BASED and record.cname is not None:
            self.infra_zone.remove_all(record.cname, RecordType.A)

    def purge_expired(self) -> List[DomainName]:
        """Drop terminated customers past their plan's purge horizon.

        Run daily by the world's event engine; returns purged hostnames.
        """
        purged: List[DomainName] = []
        for name, record in list(self._customers.items()):
            if not record.is_terminated or record.terminated_at is None:
                continue
            horizon_days = self.plan_policy(record.plan).purge_horizon_days
            if horizon_days is None:
                continue
            age_days = (self.clock.now - record.terminated_at) // SECONDS_PER_DAY
            if age_days >= horizon_days:
                self._forget(record)
                purged.append(name)
        return purged

    def _forget(self, record: CustomerRecord) -> None:
        self._customers.pop(record.hostname, None)
        if record.cname is not None:
            self._by_cname.pop(record.cname, None)
        if record.rerouting is ReroutingMethod.NS_BASED and self.customer_fleet is not None:
            self.customer_fleet.backend.drop_zone(record.hostname.apex)
        for e in self.edges:
            e.remove_origin(record.hostname)
            e.remove_origin(record.hostname.apex)

    # ------------------------------------------------------------------
    # Traffic
    # ------------------------------------------------------------------

    def absorb_attack(self, flow: TrafficFlow) -> ScrubReport:
        """Scrub an attack that was rerouted through the platform."""
        return self.scrubbing.scrub_distributed(flow)

    def absorb_attack_from(
        self, flow: TrafficFlow, bot_regions: List[Region]
    ) -> ScrubReport:
        """Scrub an attack launched from specific regions.

        Each bot's traffic lands on its anycast catchment PoP, so a
        geographically concentrated botnet overloads one scrubbing
        centre while the rest of the network sits idle.
        """
        if not bot_regions:
            return self.absorb_attack(flow)
        shares: Dict[str, float] = {}
        per_bot = 1.0 / len(bot_regions)
        for bot_region in bot_regions:
            pop = self.anycast.catchment(bot_region)
            shares[pop.pop_id] = shares.get(pop.pop_id, 0.0) + per_bot
        return self.scrubbing.scrub_weighted(shares, flow)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _require_customer(
        self, hostname: "DomainName | str", status: Optional[CustomerStatus]
    ) -> CustomerRecord:
        record = self._customers.get(DomainName(hostname))
        if record is None:
            raise PortalError(f"{hostname} is not a customer of {self.name}")
        if status is not None and record.status is not status:
            raise PortalError(
                f"{hostname} is {record.status}, expected {status} at {self.name}"
            )
        return record

    def _point_records_at(self, record: CustomerRecord, address: IPv4Address) -> None:
        if record.rerouting is ReroutingMethod.NS_BASED and self.customer_fleet is not None:
            apex = record.hostname.apex
            zone = self.customer_fleet.backend.zone_for(apex)
            if zone is not None and zone.origin == apex:
                zone.set_a(apex, address, ttl=300)
                zone.set_a(record.hostname, address, ttl=300)
        elif record.rerouting is ReroutingMethod.CNAME_BASED and record.cname is not None:
            self.infra_zone.set_a(record.cname, address, ttl=300)
        # A-based rerouting: the customer owns the record; nothing to do.

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DpsProvider({self.name!r}, customers={len(self._customers)})"
