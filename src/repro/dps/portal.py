"""Customer-portal data model.

:class:`CustomerRecord` is what the provider's central database stores
per customer: the origin address the administrator typed into the
configuration portal (§III-A), the rerouting mechanism, the plan, and
the service status.  :class:`OnboardingInstructions` is what the portal
hands back — the DNS changes the customer must make.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from ..dns.name import DomainName
from ..net.ipaddr import IPv4Address
from .plans import PlanTier

__all__ = [
    "ReroutingMethod",
    "CustomerStatus",
    "CustomerRecord",
    "OnboardingInstructions",
]


class ReroutingMethod(enum.Enum):
    """DNS-based request-rerouting mechanisms (§II-A-2)."""

    A_BASED = "A"
    CNAME_BASED = "CNAME"
    NS_BASED = "NS"

    def __str__(self) -> str:
        return self.value


class CustomerStatus(enum.Enum):
    """Provider-side view of a customer account."""

    ACTIVE = "active"
    PAUSED = "paused"
    TERMINATED = "terminated"

    def __str__(self) -> str:
        return self.value


@dataclass
class CustomerRecord:
    """One customer in the provider's central database."""

    hostname: DomainName
    origin_ip: IPv4Address
    rerouting: ReroutingMethod
    plan: PlanTier
    status: CustomerStatus = CustomerStatus.ACTIVE
    #: Canonical name assigned for CNAME-based rerouting, if any.
    cname: Optional[DomainName] = None
    #: Nameservers assigned for NS-based rerouting, if any.
    assigned_nameservers: List[DomainName] = field(default_factory=list)
    #: Edge address answering for this customer while protection is ON.
    edge_ip: Optional[IPv4Address] = None
    #: Simulation time of termination (None while a customer).
    terminated_at: Optional[int] = None
    #: Whether the customer explicitly informed the provider when leaving
    #: (footnote 9/10): uninformed departures leave the configuration —
    #: and therefore the *edge* answer — in place.
    informed_departure: bool = True

    @property
    def is_active(self) -> bool:
        """True while protection is ON."""
        return self.status is CustomerStatus.ACTIVE

    @property
    def is_terminated(self) -> bool:
        """True after the customer left the platform."""
        return self.status is CustomerStatus.TERMINATED


@dataclass(frozen=True)
class OnboardingInstructions:
    """DNS changes the customer must apply to enable protection."""

    rerouting: ReroutingMethod
    #: NS-based: nameservers to configure at the registrar.
    nameservers: List[DomainName] = field(default_factory=list)
    #: CNAME-based: canonical name to point the hostname at.
    cname: Optional[DomainName] = None
    #: A-based: edge address to put in the customer's A record.
    edge_ip: Optional[IPv4Address] = None
