"""DPS/CDN provider platforms: plans, portals, nameserver fleets,
scrubbing, residual-resolution policies, and the Table II catalog."""

from .bgp_protection import BgpCustomer, BgpProtectionService
from .catalog import (
    PAPER_PROVIDERS,
    ProviderSpec,
    build_providers,
    normalised_market_shares,
    provider_spec,
)
from .multicdn import MultiCdnService
from .nameservers import NameserverFleet, PopMirror, generate_person_names
from .plans import DEFAULT_PLAN_POLICIES, PlanPolicy, PlanTier
from .portal import (
    CustomerRecord,
    CustomerStatus,
    OnboardingInstructions,
    ReroutingMethod,
)
from .provider import DpsProvider, ProviderBuild
from .residual_policy import (
    AnswerWithOrigin,
    RefuseAfterTermination,
    ResidualPolicy,
    TrackAndCompare,
)
from .scrubbing import ScrubReport, ScrubbingCenter, ScrubbingNetwork

__all__ = [
    "BgpCustomer",
    "BgpProtectionService",
    "PAPER_PROVIDERS",
    "ProviderSpec",
    "build_providers",
    "normalised_market_shares",
    "provider_spec",
    "MultiCdnService",
    "NameserverFleet",
    "PopMirror",
    "generate_person_names",
    "DEFAULT_PLAN_POLICIES",
    "PlanPolicy",
    "PlanTier",
    "CustomerRecord",
    "CustomerStatus",
    "OnboardingInstructions",
    "ReroutingMethod",
    "DpsProvider",
    "ProviderBuild",
    "AnswerWithOrigin",
    "RefuseAfterTermination",
    "ResidualPolicy",
    "TrackAndCompare",
    "ScrubReport",
    "ScrubbingCenter",
    "ScrubbingNetwork",
]
