"""The Table II provider catalog.

Encodes the paper's per-provider identification data — CNAME substrings,
NS substrings, AS numbers, rerouting methods — together with the
simulation-side parameters needed to stand each platform up (market
share for the population model, Table V origin-IP-unchanged rates for
the admin model, pause support, residual policy, PoP counts).

``build_providers`` constructs all eleven platforms against a shared
simulated Internet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..clock import SimulationClock
from ..dns.root import DnsHierarchy
from ..errors import ConfigurationError
from ..net.asn import AsRegistry
from ..net.fabric import NetworkFabric
from ..net.ipaddr import AddressAllocator
from .portal import ReroutingMethod
from .provider import DpsProvider, ProviderBuild
from .residual_policy import (
    AnswerWithOrigin,
    RefuseAfterTermination,
    ResidualPolicy,
)

__all__ = [
    "ProviderSpec",
    "PAPER_PROVIDERS",
    "provider_spec",
    "normalised_market_shares",
    "build_providers",
]


@dataclass(frozen=True)
class ProviderSpec:
    """One row of Table II plus simulation parameters."""

    name: str
    infra_domain: str
    cname_substrings: Tuple[str, ...]
    ns_substrings: Tuple[str, ...]
    as_numbers: Tuple[int, ...]
    rerouting_methods: Tuple[ReroutingMethod, ...]
    #: Fraction of DPS customers on this platform (drives Fig. 2).
    market_share: float
    #: Table V: fraction of JOIN/RESUME customers who do NOT rotate
    #: their origin IP.
    ip_unchanged_rate: float
    #: Whether the platform offers pause-to-origin (§IV-C-1 found this
    #: only at Cloudflare and Incapsula).
    supports_pause: bool
    #: True for platforms that keep answering with stored origins after
    #: termination — the residual-resolution vulnerability.
    vulnerable_residual: bool
    #: For providers with several rerouting methods: probability a new
    #: customer uses CNAME-based rerouting (Fig. 6 for Cloudflare).
    cname_share: float = 1.0
    num_pops: int = 8
    num_edges: int = 8
    num_customer_nameservers: int = 0
    ns_host_suffix: Optional[str] = None
    scrub_capacity_per_pop_gbps: float = 150.0
    #: Fraction of edges holding IPs in other organisations' ranges
    #: (the Akamai/CDNetworks footnote-6 quirk).
    shared_ip_fraction: float = 0.0

    def default_rerouting(self) -> ReroutingMethod:
        """The single or dominant rerouting method."""
        return self.rerouting_methods[0]

    def make_residual_policy(self) -> ResidualPolicy:
        """The residual policy this platform ships with."""
        if self.vulnerable_residual:
            return AnswerWithOrigin()
        return RefuseAfterTermination()


_CF = ReroutingMethod.CNAME_BASED
_NS = ReroutingMethod.NS_BASED
_A = ReroutingMethod.A_BASED

#: The eleven providers of Table II.  Market shares follow the paper's
#: §V statistics (Cloudflare 79% of DPS customers, Incapsula 3.7%,
#: combined 82.6%) and Table V relative "Join & Resume" volumes for the
#: rest; they are normalised at use.
PAPER_PROVIDERS: List[ProviderSpec] = [
    ProviderSpec(
        name="akamai",
        infra_domain="edgekey.net",
        cname_substrings=("akamai", "edgekey", "edgesuite"),
        ns_substrings=("akam",),
        as_numbers=(32787, 12222, 20940, 16625, 35994),
        rerouting_methods=(_A, _CF),
        market_share=0.058,
        ip_unchanged_rate=0.580,
        supports_pause=False,
        vulnerable_residual=False,
        cname_share=0.70,
        num_pops=14,
        num_edges=16,
        shared_ip_fraction=0.015,
    ),
    ProviderSpec(
        name="cloudflare",
        infra_domain="cloudflare.com",
        cname_substrings=("cloudflare",),
        ns_substrings=("cloudflare",),
        as_numbers=(13335,),
        rerouting_methods=(_NS, _CF),
        market_share=0.790,
        ip_unchanged_rate=0.595,
        supports_pause=True,
        vulnerable_residual=True,
        cname_share=0.1005,
        num_pops=18,
        num_edges=16,
        num_customer_nameservers=391,
        ns_host_suffix="ns.cloudflare.com",
        scrub_capacity_per_pop_gbps=200.0,
    ),
    ProviderSpec(
        name="cloudfront",
        infra_domain="cloudfront.net",
        cname_substrings=("cloudfront",),
        ns_substrings=(),
        as_numbers=(16509,),
        rerouting_methods=(_CF,),
        market_share=0.058,
        ip_unchanged_rate=0.350,
        supports_pause=False,
        vulnerable_residual=False,
        num_pops=14,
        num_edges=16,
    ),
    ProviderSpec(
        name="cdn77",
        infra_domain="cdn77.org",
        cname_substrings=("cdn77",),
        ns_substrings=("cdn77",),
        as_numbers=(60068,),
        rerouting_methods=(_CF,),
        market_share=0.004,
        ip_unchanged_rate=0.938,
        supports_pause=False,
        vulnerable_residual=False,
        num_pops=6,
        num_edges=6,
    ),
    ProviderSpec(
        name="cdnetworks",
        infra_domain="cdngc.net",
        cname_substrings=("cdnga", "cdngc", "cdnetworks"),
        ns_substrings=("cdnetdns", "panthercdn"),
        as_numbers=(38107, 36408),
        rerouting_methods=(_CF,),
        market_share=0.005,
        ip_unchanged_rate=0.739,
        supports_pause=False,
        vulnerable_residual=False,
        num_pops=8,
        num_edges=8,
        shared_ip_fraction=0.015,
    ),
    ProviderSpec(
        name="dosarrest",
        infra_domain="dosarrest.com",
        cname_substrings=(),
        ns_substrings=(),
        as_numbers=(19324,),
        rerouting_methods=(_A,),
        market_share=0.007,
        ip_unchanged_rate=0.418,
        supports_pause=False,
        vulnerable_residual=False,
        cname_share=0.0,
        num_pops=4,
        num_edges=4,
    ),
    ProviderSpec(
        name="edgecast",
        infra_domain="edgecastcdn.net",
        cname_substrings=("edgecastcdn", "alphacdn"),
        ns_substrings=("edgecastcdn", "alphacdn"),
        as_numbers=(15133, 14210, 14153),
        rerouting_methods=(_CF,),
        market_share=0.005,
        ip_unchanged_rate=0.667,
        supports_pause=False,
        vulnerable_residual=False,
        num_pops=8,
        num_edges=8,
    ),
    ProviderSpec(
        name="fastly",
        infra_domain="fastly.net",
        cname_substrings=("fastly",),
        ns_substrings=("fastly",),
        as_numbers=(54113, 394192),
        rerouting_methods=(_CF,),
        market_share=0.014,
        ip_unchanged_rate=0.571,
        supports_pause=False,
        vulnerable_residual=False,
        num_pops=10,
        num_edges=10,
    ),
    ProviderSpec(
        name="incapsula",
        infra_domain="incapdns.net",
        cname_substrings=("incapdns",),
        ns_substrings=("incapdns",),
        as_numbers=(19551,),
        rerouting_methods=(_CF,),
        market_share=0.037,
        ip_unchanged_rate=0.634,
        supports_pause=True,
        vulnerable_residual=True,
        num_pops=10,
        num_edges=10,
        scrub_capacity_per_pop_gbps=180.0,
    ),
    ProviderSpec(
        name="limelight",
        infra_domain="llnwd.net",
        cname_substrings=("llnw", "lldns"),
        ns_substrings=("llnw", "lldns"),
        as_numbers=(22822, 38622, 55429),
        rerouting_methods=(_CF,),
        market_share=0.001,
        ip_unchanged_rate=0.667,
        supports_pause=False,
        vulnerable_residual=False,
        num_pops=8,
        num_edges=8,
    ),
    ProviderSpec(
        name="stackpath",
        infra_domain="hwcdn.net",
        cname_substrings=("stackpath", "netdna", "hwcdn"),
        ns_substrings=("netdna", "hwcdn"),
        as_numbers=(54104, 20446),
        rerouting_methods=(_CF,),
        market_share=0.004,
        ip_unchanged_rate=0.725,
        supports_pause=False,
        vulnerable_residual=False,
        num_pops=6,
        num_edges=6,
    ),
]


def provider_spec(name: str) -> ProviderSpec:
    """Look a spec up by provider name."""
    for spec in PAPER_PROVIDERS:
        if spec.name == name:
            return spec
    raise ConfigurationError(f"unknown provider: {name!r}")


def normalised_market_shares(
    specs: Optional[List[ProviderSpec]] = None,
) -> Dict[str, float]:
    """Market shares rescaled to sum to exactly 1."""
    chosen = specs if specs is not None else PAPER_PROVIDERS
    total = sum(s.market_share for s in chosen)
    return {s.name: s.market_share / total for s in chosen}


def build_providers(
    fabric: NetworkFabric,
    clock: SimulationClock,
    hierarchy: DnsHierarchy,
    as_registry: AsRegistry,
    allocator: AddressAllocator,
    offnet_allocator: Optional[AddressAllocator] = None,
    specs: Optional[List[ProviderSpec]] = None,
) -> Dict[str, DpsProvider]:
    """Stand up every provider platform in the catalog."""
    providers: Dict[str, DpsProvider] = {}
    for spec in specs if specs is not None else PAPER_PROVIDERS:
        build = ProviderBuild(
            name=spec.name,
            infra_domain=spec.infra_domain,
            as_numbers=list(spec.as_numbers),
            rerouting_methods=list(spec.rerouting_methods),
            ns_host_suffix=spec.ns_host_suffix,
            supports_pause=spec.supports_pause,
            num_pops=spec.num_pops,
            num_edges=spec.num_edges,
            num_customer_nameservers=spec.num_customer_nameservers,
            scrub_capacity_per_pop_gbps=spec.scrub_capacity_per_pop_gbps,
            shared_ip_fraction=spec.shared_ip_fraction,
        )
        providers[spec.name] = DpsProvider(
            build,
            fabric,
            clock,
            hierarchy,
            as_registry,
            allocator,
            residual_policy=spec.make_residual_policy(),
            offnet_allocator=offnet_allocator,
        )
    return providers
