"""Multi-CDN front-ends (Cedexis-style).

Some websites route through a multi-CDN service that re-selects the
best-performing member CDN dynamically.  Day-over-day, such a site looks
like it is "switching" providers constantly, which would pollute the
usage-behaviour statistics — the paper filters these sites out before
diffing (§IV-B-3).

:class:`MultiCdnService` owns a roster of member providers and flips the
site's effective provider on a deterministic schedule, so the behaviour
detector's multi-CDN filter has something real to filter.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..dns.name import DomainName
from ..rng import stable_hash

__all__ = ["MultiCdnService"]


class MultiCdnService:
    """A front-end that rotates its customers across member CDNs."""

    def __init__(self, name: str, member_providers: Sequence[str]) -> None:
        if len(member_providers) < 2:
            raise ValueError("a multi-CDN service needs at least two members")
        self.name = name
        self.members: List[str] = list(member_providers)
        self._customers: Dict[DomainName, None] = {}

    def enroll(self, hostname: "DomainName | str") -> None:
        """Put a website behind the front-end."""
        self._customers[DomainName(hostname)] = None

    def is_customer(self, hostname: "DomainName | str") -> bool:
        """True when a website is enrolled."""
        return DomainName(hostname) in self._customers

    @property
    def customers(self) -> List[DomainName]:
        """Every enrolled website."""
        return list(self._customers)

    def provider_for(self, hostname: "DomainName | str", day: int) -> str:
        """The member CDN selected for ``hostname`` on ``day``.

        Deterministic in (hostname, day) but changes day to day —
        exactly the instability that breaks naive behaviour diffing.
        """
        index = stable_hash(self.name, str(DomainName(hostname)), day) % len(self.members)
        return self.members[index]
