"""Service plan tiers.

Two plan-dependent behaviours from the paper are modelled:

* CNAME-based rerouting on Cloudflare is **exclusive to business and
  enterprise plans** (§V-A, [21]) — which is why NS-based rerouting
  dominates its customer base (Fig. 6);
* the stale-record **purge horizon** appears to differ by plan: the
  authors' free-plan probe saw records purged in the 4th week after
  termination, while some wild exposures lasted longer, which they
  attribute to "different DPS service plans" (§V-A-3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["PlanTier", "PlanPolicy", "DEFAULT_PLAN_POLICIES"]


class PlanTier(enum.Enum):
    """Customer plan tiers, ordered by how much the customer pays."""

    FREE = "free"
    PRO = "pro"
    BUSINESS = "business"
    ENTERPRISE = "enterprise"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class PlanPolicy:
    """Plan-dependent platform behaviour."""

    tier: PlanTier
    cname_setup_allowed: bool
    #: Days after termination before stale records are purged;
    #: None means records are kept indefinitely.
    purge_horizon_days: Optional[int]


#: Default per-tier policies.  The free tier's 28-day horizon reproduces
#: the paper's "purged at the 4th week" probe result; paid tiers keep
#: records longer, producing the >3-week exposure tail of Fig. 9.
DEFAULT_PLAN_POLICIES: Dict[PlanTier, PlanPolicy] = {
    PlanTier.FREE: PlanPolicy(PlanTier.FREE, cname_setup_allowed=False, purge_horizon_days=28),
    PlanTier.PRO: PlanPolicy(PlanTier.PRO, cname_setup_allowed=False, purge_horizon_days=42),
    PlanTier.BUSINESS: PlanPolicy(
        PlanTier.BUSINESS, cname_setup_allowed=True, purge_horizon_days=56
    ),
    PlanTier.ENTERPRISE: PlanPolicy(
        PlanTier.ENTERPRISE, cname_setup_allowed=True, purge_horizon_days=None
    ),
}
