"""Simulated HTTP layer: HTML documents, requests/responses, origin
servers, and CDN edge reverse proxies."""

from .edge import EdgeServer
from .html import HtmlDocument
from .http import HttpClient, HttpRequest, HttpResponse, StatusCode
from .origin import OriginServer

__all__ = [
    "EdgeServer",
    "HtmlDocument",
    "HttpClient",
    "HttpRequest",
    "HttpResponse",
    "StatusCode",
    "OriginServer",
]
