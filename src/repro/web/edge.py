"""CDN/DPS edge servers (reverse proxies).

An :class:`EdgeServer` terminates client connections at the provider and
fetches content from the customer's configured origin, caching it.  The
customer table (Host → origin IP) is owned by the provider; when a
customer terminates service the provider removes its entry and the edge
stops proxying for that host.

Edge fetches originate from the edge's own address, which sits inside
the provider's announced ranges — so DPS-only origin firewalls admit
them while direct probes are dropped.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..dns.name import DomainName
from ..net.fabric import NetworkFabric
from ..net.ipaddr import IPv4Address
from .http import HttpClient, HttpRequest, HttpResponse, StatusCode

__all__ = ["EdgeServer"]


class EdgeServer:
    """One edge (PoP-resident reverse proxy) of a provider."""

    def __init__(
        self,
        provider_name: str,
        ip: "IPv4Address | str",
        fabric: NetworkFabric,
        cache_enabled: bool = True,
    ) -> None:
        self.provider_name = provider_name
        self.ip = IPv4Address(ip)
        self._fabric = fabric
        self._origins: Dict[DomainName, IPv4Address] = {}
        self._cache: Dict[Tuple[DomainName, str], HttpResponse] = {}
        self.cache_enabled = cache_enabled
        self.requests_served = 0
        self.cache_hits = 0

    # -- customer table ---------------------------------------------------

    def configure_origin(self, host: "DomainName | str", origin_ip: "IPv4Address | str") -> None:
        """Proxy ``host`` to ``origin_ip`` from now on."""
        self._origins[DomainName(host)] = IPv4Address(origin_ip)

    def remove_origin(self, host: "DomainName | str") -> bool:
        """Stop proxying for ``host``; flush its cache entries."""
        host_name = DomainName(host)
        removed = self._origins.pop(host_name, None) is not None
        for key in [k for k in self._cache if k[0] == host_name]:
            del self._cache[key]
        return removed

    def origin_for(self, host: "DomainName | str") -> Optional[IPv4Address]:
        """The configured origin address for a host, if any."""
        return self._origins.get(DomainName(host))

    # -- proxying ------------------------------------------------------------

    def handle_request(self, request: HttpRequest) -> HttpResponse:
        """Serve from cache or fetch from the configured origin."""
        self.requests_served += 1
        origin_ip = self._origins.get(request.host)
        if origin_ip is None:
            return HttpResponse(
                status=StatusCode.NOT_FOUND,
                headers={"x-served-by": f"edge:{self.provider_name}"},
            )
        cache_key = (request.host, request.path)
        if self.cache_enabled and cache_key in self._cache:
            self.cache_hits += 1
            return self._stamp(self._cache[cache_key])
        upstream = HttpClient(self._fabric, source_ip=self.ip).get(
            origin_ip, request.host, request.path
        )
        if upstream is None:
            return HttpResponse(
                status=StatusCode.BAD_GATEWAY,
                headers={"x-served-by": f"edge:{self.provider_name}"},
            )
        if self.cache_enabled and upstream.ok:
            self._cache[cache_key] = upstream
        return self._stamp(upstream)

    def flush_cache(self) -> None:
        """Drop every cached object."""
        self._cache.clear()

    def _stamp(self, upstream: HttpResponse) -> HttpResponse:
        headers = dict(upstream.headers)
        headers["x-served-by"] = f"edge:{self.provider_name}"
        return HttpResponse(status=upstream.status, body=upstream.body, headers=headers)
