"""Minimal HTML document model.

The paper's HTML-verification step downloads a landing page twice — once
through the DPS edge, once directly from a candidate origin IP — and
compares *titles and meta tags* (§IV-C-3).  :class:`HtmlDocument` models
exactly the parts of a page that comparison needs, with a renderer and a
tolerant parser so the pipeline can round-trip documents as text the way
an HTTP client would see them.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Tuple

__all__ = ["HtmlDocument"]

_TITLE_RE = re.compile(r"<title>(.*?)</title>", re.IGNORECASE | re.DOTALL)
_META_RE = re.compile(
    r"<meta\s+name=\"([^\"]*)\"\s+content=\"([^\"]*)\"\s*/?>", re.IGNORECASE
)


@dataclass
class HtmlDocument:
    """A landing page reduced to the features HTML verification compares."""

    title: str
    meta: Dict[str, str] = field(default_factory=dict)
    body: str = ""

    def render(self) -> str:
        """Serialise to HTML text."""
        meta_tags = "\n".join(
            f'<meta name="{name}" content="{content}">'
            for name, content in sorted(self.meta.items())
        )
        return (
            "<!DOCTYPE html>\n<html>\n<head>\n"
            f"<title>{self.title}</title>\n{meta_tags}\n"
            f"</head>\n<body>\n{self.body}\n</body>\n</html>"
        )

    @classmethod
    def parse(cls, text: str) -> "HtmlDocument":
        """Parse rendered HTML back into a document.

        Tolerant by design: a missing title parses as an empty string,
        and only ``name=/content=`` meta tags are retained.
        """
        title_match = _TITLE_RE.search(text)
        title = title_match.group(1).strip() if title_match else ""
        meta = {name: content for name, content in _META_RE.findall(text)}
        body_match = re.search(r"<body>(.*?)</body>", text, re.IGNORECASE | re.DOTALL)
        body = body_match.group(1).strip() if body_match else ""
        return cls(title=title, meta=meta, body=body)

    def fingerprint(self) -> Tuple[str, Tuple[Tuple[str, str], ...]]:
        """Hashable (title, sorted meta) pair used for comparisons."""
        return (self.title, tuple(sorted(self.meta.items())))

    def matches(self, other: "HtmlDocument") -> bool:
        """The paper's comparison: identical title and identical meta set.

        Any dynamic meta attribute (timestamps, per-request tokens) makes
        this return False even for the same host — which is why the
        paper's verified-origin counts are a *lower bound* (§IV-C-3).
        """
        return self.fingerprint() == other.fingerprint()
