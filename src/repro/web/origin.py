"""Origin web servers.

An :class:`OriginServer` is the machine the DPS is supposed to hide.  It
serves the site's landing page and models the two real-world behaviours
that blunt HTML verification (§IV-C-3):

* **dynamic meta** — some sites emit per-request meta attributes
  (timestamps, request tokens), so two fetches never compare equal;
* **DPS-only firewalls** — some origins accept connections only from
  their provider's address ranges, so a direct probe gets no page at all.

Both produce false *negatives* in verification, which is why the paper's
verified-origin counts are a lower bound.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..dns.name import DomainName
from ..net.ipaddr import IPv4Address, IPv4Prefix
from .html import HtmlDocument
from .http import HttpRequest, HttpResponse, StatusCode

__all__ = ["OriginServer"]


class OriginServer:
    """Serves one website's landing page from one IP address."""

    def __init__(
        self,
        domain: "DomainName | str",
        ip: "IPv4Address | str",
        document: HtmlDocument,
        dynamic_meta_keys: Iterable[str] = (),
        firewall_allow: Optional[Iterable["IPv4Prefix | str"]] = None,
        landing_path: str = "/",
    ) -> None:
        self.domain = DomainName(domain)
        self.ip = IPv4Address(ip)
        self.document = document
        self.dynamic_meta_keys = tuple(dynamic_meta_keys)
        self.firewall_allow: Optional[List[IPv4Prefix]] = (
            [IPv4Prefix(p) for p in firewall_allow] if firewall_allow is not None else None
        )
        self.landing_path = landing_path
        self.requests_served = 0
        self._request_counter = 0

    # -- configuration -----------------------------------------------------

    def move_to(self, new_ip: "IPv4Address | str") -> IPv4Address:
        """Change the origin's address (the admin's IP-rotation practice).

        The caller (the world model) is responsible for re-registering
        the server on the fabric; this just updates the identity.
        """
        self.ip = IPv4Address(new_ip)
        return self.ip

    def set_firewall(self, prefixes: Optional[Iterable["IPv4Prefix | str"]]) -> None:
        """Restrict (or open, with None) which sources may connect."""
        self.firewall_allow = (
            [IPv4Prefix(p) for p in prefixes] if prefixes is not None else None
        )

    # -- serving ------------------------------------------------------------

    def _firewall_permits(self, source: Optional[IPv4Address]) -> bool:
        if self.firewall_allow is None:
            return True
        if source is None:
            return False
        return any(source in prefix for prefix in self.firewall_allow)

    def handle_request(self, request: HttpRequest) -> Optional[HttpResponse]:
        """Serve the landing page.

        Returns None (transport-level drop) when the firewall rejects
        the source — from the prober's perspective indistinguishable
        from an unused address, which is exactly the point.
        """
        if not self._firewall_permits(request.source_ip):
            return None
        self.requests_served += 1
        if request.path not in ("/", self.landing_path):
            return HttpResponse(status=StatusCode.NOT_FOUND)
        self._request_counter += 1
        document = self._materialise_document()
        return HttpResponse(
            status=StatusCode.OK,
            body=document.render(),
            headers={
                "x-landing-url": f"http://{self.domain}{self.landing_path}",
                "x-served-by": f"origin:{self.domain}",
            },
        )

    def _materialise_document(self) -> HtmlDocument:
        """The document as served right now, with dynamic meta filled in."""
        meta = dict(self.document.meta)
        for key in self.dynamic_meta_keys:
            meta[key] = f"req-{self._request_counter}"
        return HtmlDocument(self.document.title, meta, self.document.body)
