"""Simulated HTTP: requests, responses, and a fabric-backed client.

Requests carry a Host header and the client's source address, because
both matter to the study: edges route on Host, and origins may be
firewalled to accept only traffic from their DPS provider's ranges
(§IV-C-3).  Responses carry the landing-page URL, which the paper reads
off the through-edge response before replaying the fetch against a
candidate origin IP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..dns.name import DomainName
from ..faults.retry import RetryPolicy, default_retry_rng
from ..net.fabric import NetworkFabric
from ..net.geo import Region
from ..net.ipaddr import IPv4Address
from ..obs.metrics import MetricsRegistry
from ..rng import SeededRng

__all__ = ["HttpRequest", "HttpResponse", "HttpClient", "StatusCode"]


class StatusCode:
    """The handful of status codes the simulation uses."""

    OK = 200
    FORBIDDEN = 403
    NOT_FOUND = 404
    BAD_GATEWAY = 502


@dataclass(frozen=True)
class HttpRequest:
    """A GET request (the only method the study needs)."""

    host: DomainName
    path: str = "/"
    source_ip: Optional[IPv4Address] = None
    client_region: Optional[Region] = None

    @property
    def url(self) -> str:
        """The request URL."""
        return f"http://{self.host}{self.path}"


@dataclass
class HttpResponse:
    """A response: status, body, and a few meaningful headers."""

    status: int
    body: str = ""
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True for 200."""
        return self.status == StatusCode.OK

    @property
    def landing_url(self) -> Optional[str]:
        """Canonical landing-page URL advertised by the server, if any."""
        return self.headers.get("x-landing-url")

    @property
    def served_by(self) -> Optional[str]:
        """Identity of the serving infrastructure (edge or origin)."""
        return self.headers.get("x-served-by")


class HttpClient:
    """Issues GETs to explicit destination addresses via the fabric.

    Explicit addressing matters: the verification step connects to a raw
    IP while presenting an arbitrary Host header, exactly like the
    paper's probes.
    """

    def __init__(
        self,
        fabric: NetworkFabric,
        source_ip: Optional["IPv4Address | str"] = None,
        region: Optional[Region] = None,
        retry_policy: Optional[RetryPolicy] = None,
        retry_rng: Optional[SeededRng] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._fabric = fabric
        self.source_ip = IPv4Address(source_ip) if source_ip is not None else None
        self.region = region
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self._retry_rng = retry_rng
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.requests_sent = 0

    def _jitter_rng(self) -> SeededRng:
        if self._retry_rng is None:
            label = self.region.name if self.region is not None else "global"
            self._retry_rng = default_retry_rng(f"http-client-{label}")
        return self._retry_rng

    def state_dict(self) -> Dict[str, object]:
        """Persistent mutable state (counters, jitter position, metrics)."""
        return {
            "requests_sent": self.requests_sent,
            "retry_rng": (
                self._retry_rng.getstate() if self._retry_rng is not None else None
            ),
            "metrics": self.metrics.snapshot(),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Reinstate state captured by :meth:`state_dict`."""
        self.requests_sent = int(state["requests_sent"])
        if state["retry_rng"] is None:
            self._retry_rng = None
        else:
            self._jitter_rng().setstate(state["retry_rng"])
        self.metrics.restore(state["metrics"])

    def get(
        self,
        ip: "IPv4Address | str",
        host: "DomainName | str",
        path: str = "/",
    ) -> Optional[HttpResponse]:
        """GET ``http://host{path}`` from the server at ``ip``.

        Transient connection failures (injected loss, outages, rate
        limiting) are retried under the client's retry policy.  Returns
        None when nothing listens at the address or every attempt was
        dropped — a connection timeout at the transport level.
        """
        self.requests_sent += 1
        self.metrics.incr("http.requests")
        request = HttpRequest(
            host=DomainName(host),
            path=path,
            source_ip=self.source_ip,
            client_region=self.region,
        )
        policy = self.retry_policy
        budget = policy.budget()
        for attempt in range(1, policy.max_attempts + 1):
            if attempt > 1:
                budget.charge(policy.backoff_ms(attempt - 1, self._jitter_rng()))
                if budget.exhausted:
                    self.metrics.incr("http.budget_exhausted")
                    break
                self.metrics.incr("http.retries")
            delivery = self._fabric.deliver_http(ip, request, self.region)
            budget.charge(delivery.latency_ms)
            if delivery.outcome == "dark":
                # No listener bound — deterministic, never retried.
                break
            if delivery.response is not None:
                self.metrics.incr("http.answered")
                return delivery.response
        self.metrics.incr("http.unanswered")
        return None
