"""Simulated HTTP: requests, responses, and a fabric-backed client.

Requests carry a Host header and the client's source address, because
both matter to the study: edges route on Host, and origins may be
firewalled to accept only traffic from their DPS provider's ranges
(§IV-C-3).  Responses carry the landing-page URL, which the paper reads
off the through-edge response before replaying the fetch against a
candidate origin IP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..dns.name import DomainName
from ..net.fabric import NetworkFabric
from ..net.geo import Region
from ..net.ipaddr import IPv4Address

__all__ = ["HttpRequest", "HttpResponse", "HttpClient", "StatusCode"]


class StatusCode:
    """The handful of status codes the simulation uses."""

    OK = 200
    FORBIDDEN = 403
    NOT_FOUND = 404
    BAD_GATEWAY = 502


@dataclass(frozen=True)
class HttpRequest:
    """A GET request (the only method the study needs)."""

    host: DomainName
    path: str = "/"
    source_ip: Optional[IPv4Address] = None
    client_region: Optional[Region] = None

    @property
    def url(self) -> str:
        """The request URL."""
        return f"http://{self.host}{self.path}"


@dataclass
class HttpResponse:
    """A response: status, body, and a few meaningful headers."""

    status: int
    body: str = ""
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True for 200."""
        return self.status == StatusCode.OK

    @property
    def landing_url(self) -> Optional[str]:
        """Canonical landing-page URL advertised by the server, if any."""
        return self.headers.get("x-landing-url")

    @property
    def served_by(self) -> Optional[str]:
        """Identity of the serving infrastructure (edge or origin)."""
        return self.headers.get("x-served-by")


class HttpClient:
    """Issues GETs to explicit destination addresses via the fabric.

    Explicit addressing matters: the verification step connects to a raw
    IP while presenting an arbitrary Host header, exactly like the
    paper's probes.
    """

    def __init__(
        self,
        fabric: NetworkFabric,
        source_ip: Optional["IPv4Address | str"] = None,
        region: Optional[Region] = None,
    ) -> None:
        self._fabric = fabric
        self.source_ip = IPv4Address(source_ip) if source_ip is not None else None
        self.region = region
        self.requests_sent = 0

    def get(
        self,
        ip: "IPv4Address | str",
        host: "DomainName | str",
        path: str = "/",
    ) -> Optional[HttpResponse]:
        """GET ``http://host{path}`` from the server at ``ip``.

        Returns None when nothing listens at the address (connection
        timeout / refused at the transport level).
        """
        self.requests_sent += 1
        handler = self._fabric.http_handler_at(ip, self.region)
        if handler is None:
            return None
        request = HttpRequest(
            host=DomainName(host),
            path=path,
            source_ip=self.source_ip,
            client_region=self.region,
        )
        return handler.handle_request(request)
