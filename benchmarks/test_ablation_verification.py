"""Ablation — HTML-verification strictness (DESIGN.md §6).

The paper's title+meta comparison is a strict lower bound: dynamic meta
attributes hide true origins.  Relaxing to title-only recovers those
misses (at the cost of possible false positives on same-titled sites).
This bench quantifies the gap on identical hidden-record sets.
"""

import pytest

from repro.core.htmlverify import HtmlVerifier
from repro.core.pipeline import FilterPipeline, RetrievedRecord
from repro.dps.portal import ReroutingMethod
from repro.world import SimulatedInternet, WorldConfig

COHORT = 25


@pytest.fixture(scope="module")
def hidden_record_set():
    """A cohort of switchers (guaranteed hidden records), some with
    dynamic-meta origins."""
    world = SimulatedInternet(
        WorldConfig(population_size=800, seed=81, dynamic_meta_fraction=0.35)
    )
    cf, inc = world.provider("cloudflare"), world.provider("incapsula")
    from repro.dps.plans import PlanTier

    records = []
    count = 0
    for site in world.population:
        if count >= COHORT:
            break
        if (site.provider is not None or not site.alive or site.multicdn
                or site.firewall_inclined or site.is_rotating):
            continue
        site.join(cf, ReroutingMethod.NS_BASED)
        origin_ip = site.origin.ip
        site.switch(inc, ReroutingMethod.CNAME_BASED, PlanTier.BUSINESS, informed=True)
        records.append(RetrievedRecord(str(site.www), "cloudflare", (origin_ip,)))
        count += 1
    return world, records


def _verified_count(world, records, strictness):
    verifier = HtmlVerifier(world.http_client("oregon"), strictness=strictness)
    pipeline = FilterPipeline(
        world.provider("cloudflare").prefixes, world.make_resolver(), verifier
    )
    return pipeline.run(records, "cloudflare", week=0).verified_count


def test_title_only_recovers_dynamic_meta_misses(hidden_record_set):
    world, records = hidden_record_set
    strict = _verified_count(world, records, "title-and-meta")
    lax = _verified_count(world, records, "title-only")
    # Every record here IS a live origin; the strict comparison misses
    # the dynamic-meta ones, the lax one verifies all.
    assert lax == len(records)
    assert strict < lax
    print(f"\nverified: title-and-meta {strict}/{len(records)}, "
          f"title-only {lax}/{len(records)} "
          f"(strict misses {lax - strict} dynamic-meta origins)")


def test_strict_verification_never_false_positives(hidden_record_set):
    """The strict comparison's virtue: pointing a hidden record at a
    *different* site's origin never verifies."""
    world, records = hidden_record_set
    other = next(
        s for s in world.population
        if s.provider is None and s.alive and not s.multicdn
        and not s.dynamic_meta
    )
    wrong = [
        RetrievedRecord(r.www, r.provider, (other.origin.ip,)) for r in records
    ]
    assert _verified_count(world, wrong, "title-and-meta") == 0


def test_ablation_benchmark(benchmark, hidden_record_set):
    world, records = hidden_record_set

    def run_both():
        return (
            _verified_count(world, records, "title-and-meta"),
            _verified_count(world, records, "title-only"),
        )

    strict, lax = benchmark(run_both)
    assert strict <= lax
