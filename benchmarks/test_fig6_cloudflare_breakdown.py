"""E6 — Fig. 6: Cloudflare adoption breakdown by rerouting mechanism.

Paper: NS-based 89.95% vs CNAME-based 10.05% (CNAME setup is exclusive
to business/enterprise plans).
"""

from repro.core.report import render_fig6_cloudflare
from repro.dps.plans import PlanTier
from repro.dps.portal import ReroutingMethod


def test_fig6_breakdown_shape(study):
    assert 0.82 < study.cloudflare_ns_share < 0.96       # paper 89.95%
    assert 0.04 < study.cloudflare_cname_share < 0.18    # paper 10.05%
    print()
    print(render_fig6_cloudflare(study))


def test_fig6_cname_customers_hold_paid_plans(bench_world):
    cf = bench_world.provider("cloudflare")
    cname_customers = [
        record for record in cf.customers
        if record.rerouting is ReroutingMethod.CNAME_BASED
    ]
    assert cname_customers
    for record in cname_customers:
        assert record.plan in (PlanTier.BUSINESS, PlanTier.ENTERPRISE)


def test_fig6_classification_benchmark(benchmark, study):
    def tally():
        ns = cname = 0
        for day in study.observations:
            for observation in day.values():
                if observation.provider != "cloudflare":
                    continue
                if observation.rerouting is ReroutingMethod.CNAME_BASED:
                    cname += 1
                elif observation.rerouting is ReroutingMethod.NS_BASED:
                    ns += 1
        return ns, cname

    ns, cname = benchmark(tally)
    assert ns > cname
