"""E1 — Fig. 2: DPS adoption breakdown per provider.

Paper: 14.85% of the top 1M adopt a DPS; 38.98% among the top 10k;
Cloudflare dominates; adoption grew ~1.17% over six weeks.
"""

from repro.core.collector import DnsRecordCollector
from repro.core.report import render_fig2_adoption


def test_fig2_adoption_shape(study):
    assert 0.12 < study.overall_adoption_rate < 0.18          # paper 14.85%
    assert 0.30 < study.top_sites_adoption_rate < 0.50        # paper 38.98%
    assert study.top_sites_adoption_rate > 2 * study.overall_adoption_rate
    adoption = study.adoption_by_provider
    assert max(adoption, key=adoption.get) == "cloudflare"
    total = sum(adoption.values())
    assert adoption["cloudflare"] / total > 0.70              # paper 79%
    # Paper: +1.17% over six weeks; positive in expectation, allow
    # bench-scale sampling noise around zero.
    assert study.adoption_growth > -0.015
    print()
    print(render_fig2_adoption(study))


def test_fig2_daily_collection_benchmark(benchmark, bench_world):
    """Time one daily collection pass over a 200-site sample."""
    hostnames = [str(s.www) for s in bench_world.population[:200]]
    collector = DnsRecordCollector(bench_world.make_resolver())

    def collect():
        return collector.collect(hostnames, day=bench_world.clock.day)

    snapshot = benchmark(collect)
    assert len(snapshot) == 200
