"""E10 — §V-A-3: the controlled purge-time probe.

Paper: a free-plan record signed up and terminated the same day was
purged in the 4th week after termination, consistently across three
trials spaced three weeks apart.
"""

import pytest

from repro.core.purge_probe import PurgeProbe
from repro.dps.plans import PlanTier
from repro.world import SimulatedInternet, WorldConfig


@pytest.fixture(scope="module")
def probe_world():
    return SimulatedInternet(WorldConfig(population_size=300, seed=101))


def test_purge_probe_three_trials(probe_world):
    probe = PurgeProbe(probe_world)
    trials = probe.run_trials(count=3, weeks_between=3, plan=PlanTier.FREE)
    # Same result in every trial, purged at the 4th week — as in the paper.
    assert [t.purged_in_week for t in trials] == [4, 4, 4]
    assert all(t.answered_weeks == [1, 2, 3] for t in trials)


def test_purge_probe_plan_ablation(probe_world):
    """Beyond-paper ablation: the paper *speculates* that longer wild
    exposures come from other plans; the model makes it testable."""
    probe = PurgeProbe(probe_world, max_weeks=12)
    business = probe.run_trial(plan=PlanTier.BUSINESS)
    enterprise = probe.run_trial(plan=PlanTier.ENTERPRISE)
    assert business.purged_in_week is not None and business.purged_in_week > 4
    assert enterprise.purged_in_week is None


def test_purge_probe_benchmark(benchmark):
    def run_probe():
        world = SimulatedInternet(WorldConfig(population_size=60, seed=103))
        return PurgeProbe(world).run_trial(plan=PlanTier.FREE)

    trial = benchmark.pedantic(run_probe, rounds=1, iterations=1)
    assert trial.purged_in_week == 4
