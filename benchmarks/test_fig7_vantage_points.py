"""E7 — Fig. 7: five vantage points spread the scan over distinct PoPs.

Paper: scanners in Oregon, London, Sydney, Singapore and Tokyo each hit
a different PoP of Cloudflare's anycast network, dividing the load.
"""

from repro.core.residual_scan import CloudflareScanner
from repro.core.report import render_fig7_vantage
from repro.net.geo import PAPER_VANTAGE_REGIONS, region


def test_fig7_five_distinct_catchments(bench_world):
    cf = bench_world.provider("cloudflare")
    clients = [region(name) for name in PAPER_VANTAGE_REGIONS]
    assert cf.anycast.distinct_catchments(clients) == 5


def test_fig7_scan_load_spread(study):
    counts = study.scan_pop_query_counts
    assert len(counts) == 5
    # Round-robin over five clients → near-equal shares.
    low, high = min(counts.values()), max(counts.values())
    assert high - low <= max(6 * len(study.cloudflare_weekly), high * 0.02)
    print()
    print(render_fig7_vantage(study))


def test_fig7_harvest_scale(study):
    # The paper harvested 391 nameservers; at bench scale the harvest
    # covers the subset actually assigned to observed customers.
    assert study.harvested_nameservers > 50


def test_fig7_scan_benchmark(benchmark, bench_world):
    cf = bench_world.provider("cloudflare")
    ns_ips = cf.customer_fleet.all_addresses()[:50]
    clients = [bench_world.dns_client(r) for r in PAPER_VANTAGE_REGIONS]
    hostnames = [str(s.www) for s in bench_world.population[:500]]

    def scan():
        return CloudflareScanner(ns_ips, clients).scan(hostnames)

    benchmark(scan)
