"""Calibration report: every headline paper number vs. the measured
value, with a noise-aware z-score verdict.

This is the reproduction's own quality gate: a drift in any subsystem
(admin model, purge policy, pipeline filter) shows up here as a z-score
excursion before any individual bench fails.
"""

import pytest

from repro.core.stats import (
    CalibrationCheck,
    count_zscore,
    proportion_zscore,
    wilson_interval,
)
from repro.world.admin import BehaviorKind

_PAPER_DAILY = {
    BehaviorKind.JOIN: 195.0,
    BehaviorKind.LEAVE: 145.0,
    BehaviorKind.PAUSE: 87.0,
    BehaviorKind.RESUME: 62.0,
    BehaviorKind.SWITCH: 21.0,
}


def _behavior_checks(study):
    days = study.config.study_days - 1
    checks = []
    for kind, paper_rate in _PAPER_DAILY.items():
        expected_count = paper_rate / study.scale_factor * days
        observed_count = round(study.behavior_averages.get(kind, 0.0) * days)
        checks.append(
            CalibrationCheck(
                name=f"fig3/{kind.name}",
                paper=paper_rate,
                measured=study.behavior_averages.get(kind, 0.0) * study.scale_factor,
                zscore=count_zscore(observed_count, expected_count),
            )
        )
    return checks


def _expected_adoption(study):
    """The planted 14.85% plus the JOIN−LEAVE drift accumulated through
    the warm-up and half the study window (adoption *grows* ~50 sites
    per day at 1M scale — the paper's +1.17% effect)."""
    from repro.world.config import BehaviorRates

    rates = BehaviorRates()
    base = 0.1485
    net_daily = rates.join_daily * (1 - base) - rates.leave_daily * base
    elapsed = study.config.warmup_days + study.config.study_days / 2
    return base + net_daily * elapsed


def _proportion_checks(study):
    checks = []
    # Fig. 2 — overall adoption, against the drift-adjusted expectation.
    adopted = round(study.overall_adoption_rate * study.population_size)
    expected_adoption = _expected_adoption(study)
    checks.append(
        CalibrationCheck(
            "fig2/overall-adoption", expected_adoption,
            study.overall_adoption_rate,
            proportion_zscore(adopted, study.population_size, expected_adoption),
        )
    )
    # Fig. 6 — Cloudflare NS share, over observed CF site-days
    # (correlated across days; use one day's worth as the sample size).
    cf_sites = round(
        study.adoption_by_provider.get("cloudflare", 0.0)
    )
    ns_sites = round(study.cloudflare_ns_share * cf_sites)
    checks.append(
        CalibrationCheck(
            "fig6/ns-share", 0.8995, study.cloudflare_ns_share,
            proportion_zscore(ns_sites, max(cf_sites, 1), 0.8995),
        )
    )
    # Table VI — Cloudflare verified fraction.
    totals = study.cloudflare_totals
    checks.append(
        CalibrationCheck(
            "table6/verified-fraction", 0.248,
            totals["verified"] / max(totals["hidden"], 1),
            proportion_zscore(totals["verified"], max(totals["hidden"], 1), 0.248),
        )
    )
    # Table VI — hidden-record count vs the paper's, scaled.
    expected_hidden = 3504 / study.scale_factor
    checks.append(
        CalibrationCheck(
            "table6/hidden-count", 3504.0,
            totals["hidden"] * study.scale_factor,
            count_zscore(totals["hidden"], expected_hidden),
        )
    )
    return checks


def test_calibration_report(study):
    checks = _behavior_checks(study) + _proportion_checks(study)
    print()
    print(f"{'check':<26} {'paper':>10} {'measured':>10} {'z':>6}  verdict")
    print("-" * 62)
    failures = []
    for check in checks:
        verdict = "ok" if check.within_noise else "DRIFT"
        print(f"{check.name:<26} {check.paper:>10.3f} {check.measured:>10.3f} "
              f"{check.zscore:>6.1f}  {verdict}")
        if not check.within_noise:
            failures.append(check)
    # Fig. 3 rates are planted directly: hold them to ±3σ strictly.
    # Emergent quantities (Table VI) are models of mechanisms the paper
    # only speculates about; allow ±4σ before declaring drift.
    for check in failures:
        limit = 4.0 if check.name.startswith("table6") else 3.0
        assert abs(check.zscore) <= limit, check


def test_table5_lower_bound_consistency(study):
    """Measured Table V must sit at-or-below the planted rates' Wilson
    upper bounds — verification can only lose origins, never invent."""
    from repro.dps.catalog import provider_spec

    result = study.ip_change
    assert result is not None
    for provider, row in result.rows.items():
        if row.join_resume < 10:
            continue
        planted = provider_spec(provider).ip_unchanged_rate
        _, upper = wilson_interval(row.unchanged, row.join_resume)
        # The planted rate must be consistent with (>= lower area of)
        # the measurement: measured upper bound should reach it, OR the
        # measured rate is below it (lower bound behaviour).
        assert row.percentage <= planted + 0.25 or upper >= planted


def test_calibration_benchmark(benchmark, study):
    def build():
        return _behavior_checks(study) + _proportion_checks(study)

    checks = benchmark(build)
    assert len(checks) >= 8
