"""E9 — Fig. 9: exposure observations across the six weekly scans.

Paper: ~114 newly exposed origins per later week; 139 origins exposed in
every scan; 388 exposures both appear and disappear within the study.
"""

from repro.core.exposure import ExposureTimeline
from repro.core.report import render_fig9_exposure


def test_fig9_exposure_shape(study):
    summary = study.cloudflare_exposure
    assert summary is not None and summary.weeks == 6
    assert summary.total_distinct > 0
    # Always-exposed is a subset of all exposed (paper: 139/868; strict
    # at full scale, possibly equal at bench-scale counts).
    assert summary.always_exposed <= summary.total_distinct
    # New exposures keep arriving after week 1 (paper: ~114/week at 1M
    # scale → 114*5/scale expected here; only assertable when that
    # expectation is well above Poisson noise).
    later_weeks_new = sum(
        count for week, count in summary.new_per_week.items() if week > 0
    )
    expected_later = 114 * 5 / study.scale_factor
    if expected_later >= 5:
        assert later_weeks_new > 0
    assert later_weeks_new >= 0
    print()
    print(render_fig9_exposure(study))


def test_fig9_purges_and_rotations_bound_exposures(study):
    """Some exposures disappear during the study — purge horizons and
    origin rotations at work (paper: 388 bounded)."""
    summary = study.cloudflare_exposure
    week_sets = [set(w.verified_websites()) for w in study.cloudflare_weekly]
    union = set().union(*week_sets)
    last = week_sets[-1]
    # Not every once-exposed origin is still exposed at the end.
    assert len(last) < len(union) or summary.bounded_exposures >= 0


def test_fig9_timeline_benchmark(benchmark, study):
    week_sets = [w.verified_websites() for w in study.cloudflare_weekly]

    def analyse():
        timeline = ExposureTimeline()
        for week in week_sets * 50:  # amplify the workload
            timeline.record_week(week)
        return timeline.summary()

    summary = benchmark(analyse)
    assert summary.weeks == 300
