"""E4 — Fig. 5: CDF of pause periods (exposure windows).

Paper: less than half of customers resume within one day; ~30% of pause
periods exceed 5 days; Incapsula's pauses are slightly shorter than
Cloudflare's.
"""

from repro.core.pause import PauseAnalyzer, empirical_cdf
from repro.core.report import render_fig5_pause_cdf


def test_fig5_pause_cdf_shape(study):
    durations = study.pause_durations_overall
    assert len(durations) >= 8, "need completed pauses at bench scale"
    one_day = sum(1 for d in durations if d <= 1) / len(durations)
    assert one_day < 0.70            # "less than half" (loose at this n)
    over5 = PauseAnalyzer.fraction_longer_than(durations, 5)
    assert 0.08 < over5 < 0.55       # paper ~30%
    cdf = empirical_cdf(durations)
    assert cdf[-1][1] == 1.0
    print()
    print(render_fig5_pause_cdf(study))


def test_fig5_provider_split(study):
    cf = study.pause_durations_by_provider.get("cloudflare", [])
    incap = study.pause_durations_by_provider.get("incapsula", [])
    # Only the two pause-capable providers ever produce windows.
    assert set(study.pause_durations_by_provider) <= {"cloudflare", "incapsula"}
    assert len(cf) + len(incap) <= len(study.pause_durations_overall)
    if len(cf) >= 10 and len(incap) >= 5:
        assert sum(incap) / len(incap) <= sum(cf) / len(cf) * 1.5


def test_fig5_cdf_benchmark(benchmark, study):
    durations = study.pause_durations_overall * 200  # amplify the workload

    def compute():
        return empirical_cdf(durations)

    cdf = benchmark(compute)
    assert cdf
