"""E2 — Fig. 3: daily usage behaviours.

Paper averages per day (top 1M): 195 JOIN, 145 LEAVE, 87 PAUSE,
62 RESUME, 21 SWITCH; JOIN > LEAVE (growth), PAUSE > RESUME, SWITCH rarest.
"""

from repro.core.behaviors import BehaviorDetector
from repro.core.report import render_fig3_behaviors
from repro.world.admin import BehaviorKind


def test_fig3_behavior_shape(study):
    averages = study.behavior_averages
    scaled = {k: v * study.scale_factor for k, v in averages.items()}
    days = study.config.study_days - 1
    counts = {k: v * days for k, v in averages.items()}

    def exceeds(a: BehaviorKind, b: BehaviorKind) -> bool:
        # a > b within Poisson noise of the raw event counts.
        return counts[a] > counts[b] - 2 * (counts[b] + 1) ** 0.5

    # Ordering shape from the paper.
    assert exceeds(BehaviorKind.JOIN, BehaviorKind.PAUSE)
    assert exceeds(BehaviorKind.PAUSE, BehaviorKind.RESUME)
    assert exceeds(BehaviorKind.RESUME, BehaviorKind.SWITCH)
    assert exceeds(BehaviorKind.JOIN, BehaviorKind.LEAVE)

    # Magnitudes within a factor-2 band plus Poisson slack.
    paper = {
        BehaviorKind.JOIN: 195, BehaviorKind.LEAVE: 145,
        BehaviorKind.PAUSE: 87, BehaviorKind.RESUME: 62,
        BehaviorKind.SWITCH: 21,
    }
    for kind, target in paper.items():
        expected_count = target / study.scale_factor * days
        slack = 2.5 * (expected_count + 1) ** 0.5 * study.scale_factor / days
        assert target / 2 - slack < scaled[kind] < target * 2 + slack, (
            kind, scaled[kind],
        )
    print()
    print(render_fig3_behaviors(study))


def test_fig3_diffing_benchmark(benchmark, study):
    """Time the day-over-day behaviour diffing over the whole series."""
    detector = BehaviorDetector(excluded=study.multicdn_flagged)

    def diff():
        return detector.diff_series(study.observations, first_day=1)

    behaviors = benchmark(diff)
    assert behaviors
