"""E11 — Fig. 1 / §III: the end-to-end bypass demonstration.

(a) With DPS in effect, a flood at the resolved (edge) address is
scrubbed and the origin stays up.  (b) After a switch, the previous
provider's residual record leaks the origin; the same flood aimed there
takes the site down — the *new* DPS never sees a packet.
"""

import pytest

from repro.core.attacker import DdosSimulator, ResidualResolutionAttacker
from repro.core.matching import ProviderMatcher
from repro.dps.plans import PlanTier
from repro.dps.portal import ReroutingMethod
from repro.world import SimulatedInternet, WorldConfig

ATTACK_GBPS = 900.0


@pytest.fixture(scope="module")
def scenario():
    world = SimulatedInternet(WorldConfig(population_size=200, seed=107))
    site = next(
        s for s in world.population
        if s.provider is None and s.alive and not s.multicdn
        and not s.dynamic_meta and not s.firewall_inclined
    )
    matcher = ProviderMatcher(world.specs, world.routeviews)
    return world, site, matcher


def test_fig1a_protected_site_survives(scenario):
    world, site, matcher = scenario
    cf = world.provider("cloudflare")
    site.join(cf, ReroutingMethod.NS_BASED)
    public = world.make_resolver().resolve(site.www)
    outcome = DdosSimulator(world.providers, matcher).attack(
        public.addresses[0], attack_gbps=ATTACK_GBPS
    )
    assert outcome.path == "scrubbed"
    assert not outcome.attack_succeeded
    assert outcome.origin_availability > 0.9


def test_fig1b_residual_bypass_kills_origin(scenario):
    world, site, matcher = scenario
    cf, inc = world.provider("cloudflare"), world.provider("incapsula")
    if site.provider is None:  # robust under test selection
        site.join(cf, ReroutingMethod.NS_BASED)
    site.switch(inc, ReroutingMethod.CNAME_BASED, PlanTier.BUSINESS, informed=True)

    attacker = ResidualResolutionAttacker(world.dns_client("london"), matcher)
    discovery = attacker.probe_nameservers(
        site.www, cf.customer_fleet.all_addresses()[:20]
    )
    assert discovery.succeeded

    outcome = DdosSimulator(world.providers, matcher).attack(
        discovery.candidate_origins[0], attack_gbps=ATTACK_GBPS
    )
    assert outcome.path == "direct"
    assert outcome.attack_succeeded
    assert outcome.origin_saturated


def test_fig1_discovery_benchmark(benchmark, scenario):
    world, _, matcher = scenario
    cf, inc = world.provider("cloudflare"), world.provider("incapsula")
    # Self-contained residual state (independent of the other tests,
    # which --benchmark-only skips).
    victim = next(
        s for s in world.population
        if s.provider is None and s.alive and not s.multicdn
    )
    victim.join(cf, ReroutingMethod.NS_BASED)
    victim.switch(inc, ReroutingMethod.CNAME_BASED, PlanTier.BUSINESS, informed=True)
    attacker = ResidualResolutionAttacker(world.dns_client("tokyo"), matcher)
    ns_ips = cf.customer_fleet.all_addresses()[:20]

    def discover():
        return attacker.probe_nameservers(victim.www, ns_ips)

    result = benchmark(discover)
    assert result.succeeded


def test_fig1_attack_simulation_benchmark(benchmark, scenario):
    world, site, matcher = scenario
    simulator = DdosSimulator(world.providers, matcher)

    def flood():
        return simulator.attack(site.origin.ip, attack_gbps=ATTACK_GBPS)

    outcome = benchmark(flood)
    assert outcome.path == "direct"
