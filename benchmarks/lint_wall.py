"""Lint wall-time: cold (parse everything) vs warm (cache only).

Measures ``repro lint`` over ``src/repro`` twice against a fresh cache
file — the first run parses and summarizes every module, the second
replays findings and summaries from the content-hash cache and only
re-runs the whole-program passes (REP04x taint, REP06x shard safety,
and the REP07x effect-inference fixpoint).  Writes ``BENCH_pr4.json``,
or merges a ``lint_wall`` section into an existing BENCH payload with
``--merge-into`` so one file carries both the query-path counters and
the lint-wall trajectory.

Run from the repo root:

    PYTHONPATH=src python benchmarks/lint_wall.py [--repeat N]
    PYTHONPATH=src python benchmarks/lint_wall.py --merge-into BENCH_pr9.json

Not a pytest bench on purpose: wall-time assertions are flaky in CI,
and the cache-correctness properties (zero re-parses warm, identical
findings) are already tier-1 tests in ``tests/analysis/test_cache.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.analysis import Analyzer  # noqa: E402


def _timed_run(cache_path):
    analyzer = Analyzer(root=REPO_ROOT, cache_path=cache_path)
    paths = [os.path.join(REPO_ROOT, "src", "repro")]
    start = time.perf_counter()
    result = analyzer.analyze(paths)
    elapsed = time.perf_counter() - start
    stats = result.stats
    return {
        "wall_seconds": elapsed,
        "files": stats.files,
        "parsed": stats.parsed,
        "cache_hits": stats.cache_hits,
        "findings": len(result.findings),
        "inline_suppressed": len(result.inline_suppressed),
    }


def run(repeat: int = 3) -> dict:
    with tempfile.TemporaryDirectory() as tmp:
        cache_path = os.path.join(tmp, "lint-cache.json")
        cold = _timed_run(cache_path)
        warms = [_timed_run(cache_path) for _ in range(repeat)]
    warm = min(warms, key=lambda r: r["wall_seconds"])
    if warm["parsed"] != 0:
        raise SystemExit(
            "warm run re-parsed %d file(s); cache is broken" % warm["parsed"]
        )
    if warm["findings"] != cold["findings"]:
        raise SystemExit("warm findings diverge from cold; cache is broken")
    return {
        "bench": "lint_wall",
        "target": "src/repro",
        "cold": cold,
        "warm": warm,
        "warm_repeats": repeat,
        "speedup": cold["wall_seconds"] / warm["wall_seconds"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--output", default=os.path.join(REPO_ROOT, "BENCH_pr4.json"))
    parser.add_argument(
        "--merge-into", default=None, metavar="BENCH_JSON",
        help="write the result as the 'lint_wall' key of an existing"
             " BENCH payload instead of a standalone file",
    )
    args = parser.parse_args(argv)
    payload = run(repeat=args.repeat)
    if args.merge_into is not None:
        with open(args.merge_into, "r", encoding="utf-8") as handle:
            bench = json.load(handle)
        bench["lint_wall"] = payload
        with open(args.merge_into, "w", encoding="utf-8") as handle:
            json.dump(bench, handle, indent=2, sort_keys=True)
            handle.write("\n")
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    print(
        "lint %s: cold %.3fs (%d parsed) -> warm %.3fs (%d cache hits), %.1fx"
        % (
            payload["target"],
            payload["cold"]["wall_seconds"],
            payload["cold"]["parsed"],
            payload["warm"]["wall_seconds"],
            payload["warm"]["cache_hits"],
            payload["speedup"],
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
