"""E3 — Fig. 4: the DPS usage finite state machine.

Every per-site observation sequence produced by the measurement must be
explainable by the FSM, and the behaviours emitted by the detector must
equal the FSM's edge labels.
"""

from collections import defaultdict

from repro.core.fsm import DpsUsageFsm


def _site_sequences(study):
    sequences = defaultdict(list)
    for day_observations in study.observations:
        for www, observation in day_observations.items():
            sequences[www].append(observation)
    return sequences


def test_fig4_all_sequences_fsm_legal(study):
    sequences = _site_sequences(study)
    assert sequences
    labelled_edges = 0
    for www, sequence in sequences.items():
        labels = DpsUsageFsm.validate_sequence(sequence)  # raises if illegal
        labelled_edges += sum(1 for label in labels if label)
    # The study window contains real transitions, not just self-loops.
    assert labelled_edges > 0


def test_fig4_validation_benchmark(benchmark, study):
    sequences = list(_site_sequences(study).values())

    def validate_all():
        return [DpsUsageFsm.validate_sequence(seq) for seq in sequences]

    results = benchmark(validate_all)
    assert len(results) == len(sequences)
