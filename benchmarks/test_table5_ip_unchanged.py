"""E5 — Table V: origin-IP unchanged rate after JOIN/RESUME.

Paper: 58.6% overall; Cloudfront lowest (35.0%), CDN77 highest (93.8%);
Cloudflare 59.5%.
"""

from repro.core.htmlverify import HtmlVerifier
from repro.core.ip_change import IpChangeExperiment
from repro.core.report import render_table5_ip_unchanged


def test_table5_total_rate(study):
    result = study.ip_change
    assert result is not None
    total = result.total
    assert total.join_resume >= 15, "need JOIN/RESUME events at bench scale"
    # Paper total 58.6%.  Our measured value sits *below* the planted
    # rate because HTML verification misses firewalled and dynamic-meta
    # origins (~18% of sites) — the lower-bound property the paper
    # itself states.  Binomial noise at bench-scale n widens the band.
    expected = 0.586 * 0.82
    tolerance = 0.10 + 1.2 * (0.25 / total.join_resume) ** 0.5
    assert abs(total.percentage - expected) < tolerance, (
        total.percentage, total.join_resume,
    )
    print()
    print(render_table5_ip_unchanged(study))


def test_table5_cloudflare_row(study):
    row = study.ip_change.rows.get("cloudflare")
    assert row is not None and row.join_resume >= 10
    expected = 0.595 * 0.82  # paper 59.5%, minus verification misses
    tolerance = 0.10 + 1.2 * (0.25 / row.join_resume) ** 0.5
    assert abs(row.percentage - expected) < tolerance


def test_table5_verification_is_lower_bound(study, bench_world):
    """Measured unchanged rates never exceed the planted Table V rates by
    more than sampling noise — dynamic meta and firewalls only *hide*
    unchanged origins, never invent them."""
    from repro.dps.catalog import provider_spec
    for name, row in study.ip_change.rows.items():
        if row.join_resume < 20:
            continue
        planted = provider_spec(name).ip_unchanged_rate
        assert row.percentage <= planted + 0.22


def test_table5_experiment_benchmark(benchmark, study, bench_world):
    verifier = HtmlVerifier(bench_world.http_client("oregon"))
    experiment = IpChangeExperiment(verifier)

    def run():
        return experiment.run(study.behaviors, study.snapshots)

    result = benchmark(run)
    assert result.total.join_resume == study.ip_change.total.join_resume
