"""E8 — Table VI + Fig. 8: residual resolution in the wild.

Paper: 3,504 hidden records at Cloudflare over six weekly scans, 24.8%
verified as live origins; 42 hidden at Incapsula, 69% verified (small
but sharply more verifiable).  At bench scale (1:250 by default) the
Cloudflare counts scale linearly; the Incapsula row is tiny and asserted
loosely — raise REPRO_BENCH_POP to tighten it.
"""

from repro.core.report import render_table6_residual


def test_table6_cloudflare_magnitude(study):
    totals = study.cloudflare_totals
    scaled_hidden = totals["hidden"] * study.scale_factor
    # Paper: 3,504 distinct hidden records.  Accept a 2.5× band — the
    # substrate is a calibrated model, not the authors' testbed.
    assert 3504 / 2.5 < scaled_hidden < 3504 * 2.5, scaled_hidden

    assert totals["verified"] > 0
    verified_fraction = totals["verified"] / totals["hidden"]
    # Paper: 24.8% of hidden records verify as live origins.  The band
    # widens at small sample sizes (binomial noise at bench scale).
    tolerance = 0.20 + 1.2 * (0.25 / totals["hidden"]) ** 0.5
    assert abs(verified_fraction - 0.248) < tolerance, (
        verified_fraction, totals["hidden"],
    )
    print()
    print(render_table6_residual(study))


def test_table6_weekly_scans_stationary(study):
    weekly = study.cloudflare_weekly
    assert len(weekly) == 6
    counts = [w.hidden_count for w in weekly]
    assert all(c > 0 for c in counts)
    # Warmed-up steady state: no week dominates (paper: 1,356-1,893).
    assert max(counts) < 3 * min(counts)


def test_table6_filters_remove_most_records(study):
    """Fig. 8 shape: the overwhelming majority of retrieved records are
    IP-filtered (active customers) — hidden records are the rare tail."""
    for weekly in study.cloudflare_weekly:
        assert weekly.dropped_ip_filter > weekly.hidden_count


def test_table6_incapsula_row(study):
    totals = study.incapsula_totals
    # Tiny at 1:250 scale (paper found only 42 at full scale).
    assert totals["hidden"] * study.scale_factor < 42 * 6
    if totals["hidden"] >= 3:
        # When there is enough signal, Incapsula verifies more often
        # than Cloudflare (69% vs 24.8%).
        cf = study.cloudflare_totals
        assert (
            totals["verified"] / totals["hidden"]
            > cf["verified"] / cf["hidden"]
        )


def test_table6_pipeline_benchmark(benchmark, study, bench_world):
    from repro.core.htmlverify import HtmlVerifier
    from repro.core.pipeline import FilterPipeline, RetrievedRecord

    cf = bench_world.provider("cloudflare")
    verifier = HtmlVerifier(bench_world.http_client("oregon"))
    pipeline = FilterPipeline(cf.prefixes, bench_world.make_resolver(), verifier)
    records = [
        RetrievedRecord(str(s.www), "cloudflare", (s.origin.ip,))
        for s in bench_world.population[:300]
    ]

    def run():
        return pipeline.run(records, "cloudflare", week=0)

    report = benchmark(run)
    assert report.retrieved == 300
