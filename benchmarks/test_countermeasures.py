"""E12 — §VI-B: countermeasure ablations (beyond-paper quantification).

For a cohort of switching customers, measure how many origins an
attacker can discover under each configuration:

* baseline (answer-with-origin — the vulnerable wild configuration);
* provider-side silent termination;
* provider-side track-and-compare;
* customer-side fake-A-before-leaving;
* customer-side rotate-after-switch.
"""

import pytest

from repro.core.attacker import ResidualResolutionAttacker
from repro.core.countermeasures import (
    leave_with_fake_a,
    silent_termination,
    track_and_compare,
)
from repro.core.matching import ProviderMatcher
from repro.dps.plans import PlanTier
from repro.dps.portal import ReroutingMethod
from repro.world import SimulatedInternet, WorldConfig

COHORT = 12


def _run_scenario(seed, configure=None, leave_action=None, rotate=False):
    """Returns (discovered, cohort_size) for one configuration."""
    world = SimulatedInternet(WorldConfig(population_size=600, seed=seed))
    cf, inc = world.provider("cloudflare"), world.provider("incapsula")
    if configure is not None:
        configure(cf)
    matcher = ProviderMatcher(world.specs, world.routeviews)
    attacker = ResidualResolutionAttacker(world.dns_client(), matcher)

    cohort = [
        s for s in world.population
        if s.provider is None and s.alive and not s.multicdn
    ][:COHORT]
    discovered = 0
    for site in cohort:
        site.join(cf, ReroutingMethod.NS_BASED)
        real_origin = site.origin.ip
        if leave_action is not None:
            leave_action(world, site)
            site.join(inc, ReroutingMethod.CNAME_BASED, PlanTier.BUSINESS)
        else:
            site.switch(
                inc, ReroutingMethod.CNAME_BASED, PlanTier.BUSINESS,
                informed=True, rotate_origin_ip=rotate,
            )
        result = attacker.probe_nameservers(
            site.www, cf.customer_fleet.all_addresses()[:10]
        )
        if rotate or leave_action is not None:
            # Discovery only counts if it finds the *live* origin.
            if site.origin.ip in result.candidate_origins:
                discovered += 1
        elif real_origin in result.candidate_origins:
            discovered += 1
    return discovered, len(cohort)


class TestAblation:
    def test_baseline_leaks_most_origins(self):
        discovered, cohort = _run_scenario(seed=201)
        assert discovered == cohort  # every informed switcher exposed

    def test_silent_termination_eliminates_exposure(self):
        discovered, _ = _run_scenario(seed=202, configure=silent_termination)
        assert discovered == 0

    def test_track_and_compare_eliminates_exposure_for_switchers(self):
        discovered, _ = _run_scenario(seed=203, configure=track_and_compare)
        assert discovered == 0

    def test_fake_a_record_eliminates_exposure(self):
        def leave_with_decoy(world, site):
            decoy = world.vantage_point("tokyo").source_ip
            leave_with_fake_a(site, decoy)

        discovered, _ = _run_scenario(seed=204, leave_action=leave_with_decoy)
        assert discovered == 0

    def test_rotation_eliminates_exposure(self):
        discovered, _ = _run_scenario(seed=205, rotate=True)
        assert discovered == 0


def test_countermeasure_ablation_benchmark(benchmark):
    def baseline():
        return _run_scenario(seed=206)

    discovered, cohort = benchmark.pedantic(baseline, rounds=1, iterations=1)
    assert discovered == cohort
