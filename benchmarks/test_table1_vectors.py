"""Table I — the classic origin-exposure vectors, quantified.

The paper surveys these vectors as background (§II-B, from Vissers et
al., who found >70% of protected sites vulnerable to at least one); our
world plants them at calibrated prevalence, and this bench measures
what a CloudPiercer-style scanner recovers — and compares the classic
vectors with the paper's new residual-resolution vector.
"""

import pytest

from repro.core.collector import DnsRecordCollector
from repro.core.history import PassiveDnsDb
from repro.core.htmlverify import HtmlVerifier
from repro.core.matching import ProviderMatcher
from repro.core.vectors import OriginExposureScanner

COHORT = 40


@pytest.fixture(scope="module")
def vector_sweep():
    from repro.dps.portal import ReroutingMethod
    from repro.world import SimulatedInternet, WorldConfig

    world = SimulatedInternet(WorldConfig(population_size=600, seed=71))
    matcher = ProviderMatcher(world.specs, world.routeviews)
    scanner = OriginExposureScanner(
        world.make_resolver(), matcher, HtmlVerifier(world.http_client("oregon"))
    )
    cohort = [
        s for s in world.population
        if s.provider is None and s.alive and not s.multicdn
    ][:COHORT]
    # Passive DNS watches the sites BEFORE they adopt protection —
    # that is where the IP-history vector's power comes from.
    db = PassiveDnsDb()
    collector = DnsRecordCollector(world.make_resolver())
    db.observe(collector.collect([str(s.www) for s in cohort], day=0))
    cf = world.provider("cloudflare")
    for site in cohort:
        # Table V discipline: some admins rotate the origin at join.
        site.join(
            cf, ReroutingMethod.NS_BASED,
            rotate_origin_ip=world.admin.rotate_on_join(
                next(s for s in world.specs if s.name == "cloudflare")
            ),
        )
    results = {
        str(site.www): scanner.scan_site(site.www, db) for site in cohort
    }
    return world, cohort, results


def test_table1_per_vector_rates(vector_sweep):
    world, customers, results = vector_sweep
    exposed_by = {"ip-history": 0, "subdomains": 0, "mx-records": 0}
    for findings in results.values():
        for finding in findings:
            if finding.exposed:
                exposed_by[finding.vector] += 1
    total = len(customers)
    print()
    print(f"Table I vectors over {total} protected sites:")
    for vector, count in exposed_by.items():
        print(f"  {vector:<12} {count:>3}/{total} ({count / total:.0%})")
    # Planted prevalence: dev 15%, MX 20% — measurement is a lower
    # bound of those, and IP history tracks the unchanged-origin rate.
    assert exposed_by["subdomains"] <= total * 0.3
    assert exposed_by["mx-records"] <= total * 0.4
    assert exposed_by["ip-history"] > 0


def test_table1_at_least_one_vector(vector_sweep):
    world, customers, results = vector_sweep
    exposed = sum(
        1 for findings in results.values() if any(f.exposed for f in findings)
    )
    rate = exposed / len(customers)
    # Vissers et al.: >70% exposed by at least one vector.  IP history
    # dominates (every unrotated, unfirewalled origin), so the rate
    # lands in the same ballpark.
    assert rate > 0.40, rate
    print(f"\nexposed by >=1 classic vector: {exposed}/{len(customers)} ({rate:.0%})")


def test_table1_sweep_benchmark(benchmark, vector_sweep):
    world, customers, _ = vector_sweep
    matcher = ProviderMatcher(world.specs, world.routeviews)
    scanner = OriginExposureScanner(
        world.make_resolver(), matcher, HtmlVerifier(world.http_client("oregon"))
    )
    site = customers[0]

    def sweep():
        return scanner.scan_site(site.www)

    findings = benchmark(sweep)
    assert len(findings) == 2  # subdomains + MX (no passive DNS here)
