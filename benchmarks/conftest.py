"""Shared benchmark fixtures.

The expensive artefact — a full six-week study over a bench-scale
population — is computed once per session and shared by every
per-table/per-figure bench.  Population size is controlled with
``REPRO_BENCH_POP`` (default 8000, i.e. a 1:125 scale model of the
paper's top-1M list); larger values tighten the small-count artifacts
(Incapsula's Table VI row, Fig. 9) at linear cost.

Each bench asserts the *shape* of its artifact against the paper (who
wins, rough ratios) and times a representative slice of the pipeline.
"""

from __future__ import annotations

import os

import pytest

from repro.core.report import render_full_report
from repro.core.study import SixWeekStudy, StudyConfig
from repro.world import SimulatedInternet, WorldConfig

BENCH_POP = int(os.environ.get("REPRO_BENCH_POP", "8000"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "2018"))


@pytest.fixture(scope="session")
def bench_world() -> SimulatedInternet:
    return SimulatedInternet(WorldConfig(population_size=BENCH_POP, seed=BENCH_SEED))


@pytest.fixture(scope="session")
def study(bench_world):
    """The full study: warm-up, 42 daily collections, 6 weekly scans."""
    report = SixWeekStudy(bench_world, StudyConfig()).run()
    print()
    print("=" * 72)
    print(f"Six-week study at population {BENCH_POP} (scale 1:{report.scale_factor:.0f})")
    print("=" * 72)
    print(render_full_report(report))
    return report


@pytest.fixture(scope="session")
def small_world() -> SimulatedInternet:
    """A second, small world for benches that mutate state."""
    return SimulatedInternet(WorldConfig(population_size=400, seed=7))
