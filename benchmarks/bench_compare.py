"""Compare two BENCH payloads: gate on counters, report wall time.

Usage::

    python benchmarks/bench_compare.py BASELINE.json CANDIDATE.json

The E1 collection counters are pure functions of (population, seed,
warmup) — byte-identical across machines and Python versions — so any
difference means the query path's *work* changed, not just its speed,
and the script exits 1.  Wall times vary with hardware; they are
printed for the perf trajectory but never gated.

A payload may also carry a ``shard_scaling`` section (``repro bench
--shards``): the sharded E1 collection's worker-scaling curve.  It is
printed when present — wall times and CPU counts are hardware facts,
and the curve's population may differ from the gated workload's — but
never gated.

Likewise a ``lint_wall`` section (``benchmarks/lint_wall.py
--merge-into``): the self-lint's cold/warm wall time and cache speedup.
Printed when present, never gated — the correctness properties (zero
warm re-parses, identical findings) are tier-1 tests.

And an ``attacks_overhead`` section: the E1 overhead curve of running
the collection under an attack campaign versus attacks-off at the same
(population, seed, warmup).  Printed when present, never gated — the
attacks-on run legitimately does different work (outage retries,
quarantine churn); the gated workload is always the attacks-off one.
"""

from __future__ import annotations

import json
import sys
from typing import Dict


def _load(path: str) -> Dict[str, object]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def compare(baseline: Dict[str, object], candidate: Dict[str, object]) -> int:
    """Print the comparison; return the process exit code."""
    for key in ("population", "seed", "warmup_days"):
        if baseline.get(key) != candidate.get(key):
            print(
                f"bench-compare: parameter mismatch on {key!r}: "
                f"baseline={baseline.get(key)} candidate={candidate.get(key)}"
                " — the runs are not comparable"
            )
            return 1

    base_e1 = baseline["e1_collection"]
    cand_e1 = candidate["e1_collection"]
    base_counters: Dict[str, int] = dict(base_e1["counters"])
    cand_counters: Dict[str, int] = dict(cand_e1["counters"])

    drift = []
    for name in sorted(set(base_counters) | set(cand_counters)):
        before = base_counters.get(name)
        after = cand_counters.get(name)
        if before != after:
            drift.append(f"  {name}: baseline={before} candidate={after}")

    base_wall = float(base_e1["wall_seconds"])
    cand_wall = float(cand_e1["wall_seconds"])
    ratio = cand_wall / base_wall if base_wall else float("inf")
    print(
        f"bench-compare: E1 wall {base_wall:.3f}s -> {cand_wall:.3f}s "
        f"({ratio:.2f}x, reported only)"
    )

    _report_shard_scaling("baseline", baseline)
    _report_shard_scaling("candidate", candidate)
    _report_lint_wall("baseline", baseline)
    _report_lint_wall("candidate", candidate)
    _report_attacks_overhead("baseline", baseline)
    _report_attacks_overhead("candidate", candidate)

    if drift:
        print(
            f"bench-compare: {len(drift)} E1 counter(s) drifted from "
            "the baseline — the collection path is doing different work:"
        )
        print("\n".join(drift))
        return 1
    print(
        f"bench-compare: all {len(base_counters)} E1 counters "
        "byte-identical to the baseline"
    )
    return 0


def _report_lint_wall(role: str, payload: Dict[str, object]) -> None:
    lint = payload.get("lint_wall")
    if not lint:
        return
    cold = lint["cold"]
    warm = lint["warm"]
    print(
        f"bench-compare: {role} lint wall ({lint['target']}, "
        f"{cold['files']} files, reported only): "
        f"cold {float(cold['wall_seconds']):.3f}s -> "
        f"warm {float(warm['wall_seconds']):.3f}s "
        f"({float(lint['speedup']):.1f}x)"
    )


def _report_attacks_overhead(role: str, payload: Dict[str, object]) -> None:
    overhead = payload.get("attacks_overhead")
    if not overhead:
        return
    print(
        f"bench-compare: {role} attacks overhead curve "
        f"(p{overhead['population']}, reported only):"
    )
    for point in overhead["points"]:
        print(
            f"  attacks={point['profile'] or 'off'}: "
            f"E1 {float(point['e1_wall_seconds']):.3f}s, "
            f"{point['queries_sent']} queries, "
            f"{point['unanswered']} unanswered"
        )


def _report_shard_scaling(role: str, payload: Dict[str, object]) -> None:
    scaling = payload.get("shard_scaling")
    if not scaling:
        return
    print(
        f"bench-compare: {role} shard-scaling curve "
        f"(p{scaling['population']}, {scaling['cpus']} cpu(s), "
        "reported only):"
    )
    for point in scaling["points"]:
        print(
            f"  {point['workers']} worker(s) [{point['mode']}]: "
            f"{float(point['wall_seconds']):.3f}s, "
            f"{point['resolved']} resolved, "
            f"{point['queries_sent']} queries"
        )


def main(argv) -> int:
    if len(argv) != 3:
        print(__doc__)
        return 2
    return compare(_load(argv[1]), _load(argv[2]))


if __name__ == "__main__":
    sys.exit(main(sys.argv))
